(* Tests for the identity-based system: bins, system steps, static
   allocation, recovery measurement, open systems and relocation. *)

module Sr = Core.Scheduling_rule
module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector

let rng ?(seed = 42) () = Prng.Rng.create ~seed ()

let check_invariants name bins =
  let loads = Core.Bins.loads bins in
  let m = Array.fold_left ( + ) 0 loads in
  if m <> Core.Bins.num_balls bins then
    Alcotest.failf "%s: ball count mismatch" name;
  let max = Array.fold_left Stdlib.max 0 loads in
  if max <> Core.Bins.max_load bins then
    Alcotest.failf "%s: max load %d vs tracked %d" name max
      (Core.Bins.max_load bins);
  let nonempty = Array.fold_left (fun a l -> if l > 0 then a + 1 else a) 0 loads in
  if nonempty <> Core.Bins.num_nonempty bins then
    Alcotest.failf "%s: nonempty mismatch" name

let test_int_vec () =
  let v = Core.Int_vec.create () in
  for i = 0 to 99 do
    Core.Int_vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Core.Int_vec.length v);
  Alcotest.(check int) "get" 42 (Core.Int_vec.get v 42);
  Core.Int_vec.set v 42 7;
  Alcotest.(check int) "set" 7 (Core.Int_vec.get v 42);
  Alcotest.(check int) "pop" 99 (Core.Int_vec.pop v);
  let removed = Core.Int_vec.swap_remove v 0 in
  Alcotest.(check int) "swap_remove returns" 0 removed;
  Alcotest.(check int) "moved last" 98 (Core.Int_vec.get v 0);
  Core.Int_vec.clear v;
  Alcotest.(check int) "clear" 0 (Core.Int_vec.length v);
  Alcotest.check_raises "empty pop" (Invalid_argument "Int_vec.pop: empty")
    (fun () -> ignore (Core.Int_vec.pop v))

let test_bins_create () =
  let b = Core.Bins.create ~n:3 in
  Alcotest.(check int) "n" 3 (Core.Bins.n b);
  Alcotest.(check int) "empty" 0 (Core.Bins.num_balls b);
  Alcotest.(check int) "max" 0 (Core.Bins.max_load b);
  check_invariants "fresh" b

let test_bins_of_loads () =
  let b = Core.Bins.of_loads [| 3; 0; 1 |] in
  Alcotest.(check int) "balls" 4 (Core.Bins.num_balls b);
  Alcotest.(check int) "load 0" 3 (Core.Bins.load b 0);
  Alcotest.(check int) "max" 3 (Core.Bins.max_load b);
  Alcotest.(check int) "nonempty" 2 (Core.Bins.num_nonempty b);
  check_invariants "of_loads" b;
  Alcotest.check_raises "negative" (Invalid_argument "Bins.of_loads: negative load")
    (fun () -> ignore (Core.Bins.of_loads [| -1 |]))

let test_bins_add_remove () =
  let g = rng () in
  let b = Core.Bins.of_loads [| 2; 1; 0 |] in
  Core.Bins.add_ball b 2;
  Alcotest.(check int) "load grew" 1 (Core.Bins.load b 2);
  check_invariants "after add" b;
  let removed_from = Core.Bins.remove_ball_uniform g b in
  Alcotest.(check bool) "valid bin" true (removed_from >= 0 && removed_from < 3);
  check_invariants "after uniform removal" b;
  let removed_from_b = Core.Bins.remove_from_random_nonempty g b in
  Alcotest.(check bool) "valid nonempty bin" true
    (removed_from_b >= 0 && removed_from_b < 3);
  check_invariants "after nonempty removal" b

let test_bins_remove_empty () =
  let g = rng () in
  let b = Core.Bins.create ~n:2 in
  Alcotest.check_raises "uniform" (Invalid_argument "Bins.remove_ball_uniform: no balls")
    (fun () -> ignore (Core.Bins.remove_ball_uniform g b));
  Alcotest.check_raises "nonempty"
    (Invalid_argument "Bins.remove_from_random_nonempty: no balls") (fun () ->
      ignore (Core.Bins.remove_from_random_nonempty g b))

let test_bins_move_ball () =
  let b = Core.Bins.of_loads [| 2; 0 |] in
  Core.Bins.move_ball b ~src:0 ~dst:1;
  Alcotest.(check int) "src" 1 (Core.Bins.load b 0);
  Alcotest.(check int) "dst" 1 (Core.Bins.load b 1);
  check_invariants "after move" b;
  Core.Bins.move_ball b ~src:1 ~dst:0;
  (* bin 1 is now empty *)
  Alcotest.check_raises "empty src" (Invalid_argument "Bins.move_ball: empty source")
    (fun () -> Core.Bins.move_ball b ~src:1 ~dst:0)

let test_bins_copy_independent () =
  let b = Core.Bins.of_loads [| 2; 1 |] in
  let c = Core.Bins.copy b in
  Core.Bins.add_ball b 0;
  Alcotest.(check int) "copy unchanged" 2 (Core.Bins.load c 0);
  check_invariants "copy" c

let test_bins_uniform_removal_law () =
  (* Removal frequency of a bin is proportional to its load. *)
  let g = rng () in
  let reps = 30_000 in
  let counts = Array.make 3 0 in
  for _ = 1 to reps do
    let b = Core.Bins.of_loads [| 6; 3; 1 |] in
    let i = Core.Bins.remove_ball_uniform g b in
    counts.(i) <- counts.(i) + 1
  done;
  let frac i = float_of_int counts.(i) /. float_of_int reps in
  Alcotest.(check bool) "bin0 ~ 0.6" true (Float.abs (frac 0 -. 0.6) < 0.02);
  Alcotest.(check bool) "bin2 ~ 0.1" true (Float.abs (frac 2 -. 0.1) < 0.02)

let test_bins_nonempty_removal_law () =
  (* Scenario B removes uniformly over non-empty bins regardless of load. *)
  let g = rng () in
  let reps = 30_000 in
  let counts = Array.make 4 0 in
  for _ = 1 to reps do
    let b = Core.Bins.of_loads [| 9; 1; 0; 2 |] in
    let i = Core.Bins.remove_from_random_nonempty g b in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "never empty bin" 0 counts.(2);
  let third = 1. /. 3. in
  for i = 0 to 3 do
    if i <> 2 then begin
      let frac = float_of_int counts.(i) /. float_of_int reps in
      if Float.abs (frac -. third) > 0.02 then
        Alcotest.failf "bin %d frequency %f" i frac
    end
  done

let test_insert_with_rule_least_of_d () =
  let g = rng () in
  (* With d very large the least-loaded bin is found w.h.p. *)
  let b = Core.Bins.of_loads [| 5; 5; 0; 5 |] in
  let bin, probes = Core.Bins.insert_with_rule (Sr.abku 64) g b in
  Alcotest.(check int) "least loaded" 2 bin;
  Alcotest.(check int) "probes" 64 probes

let qcheck_bins_random_ops =
  QCheck.Test.make ~name:"bins invariants under random op sequences" ~count:150
    QCheck.(pair small_int (int_range 1 8))
    (fun (seed, n) ->
      QCheck.assume (n >= 1);
      let g = rng ~seed () in
      let b = Core.Bins.create ~n in
      let ok = ref true in
      for _ = 1 to 200 do
        (match Prng.Rng.int g 4 with
        | 0 -> Core.Bins.add_ball b (Prng.Rng.int g n)
        | 1 ->
            if Core.Bins.num_balls b > 0 then
              ignore (Core.Bins.remove_ball_uniform g b)
        | 2 ->
            if Core.Bins.num_balls b > 0 then
              ignore (Core.Bins.remove_from_random_nonempty g b)
        | _ -> ignore (Core.Bins.insert_with_rule (Sr.abku 2) g b));
        let loads = Core.Bins.loads b in
        let m = Array.fold_left ( + ) 0 loads in
        let mx = Array.fold_left Stdlib.max 0 loads in
        let ne =
          Array.fold_left (fun a l -> if l > 0 then a + 1 else a) 0 loads
        in
        if
          m <> Core.Bins.num_balls b
          || mx <> Core.Bins.max_load b
          || ne <> Core.Bins.num_nonempty b
        then ok := false
      done;
      !ok)

let test_system_conserves_balls () =
  let g = rng () in
  List.iter
    (fun sc ->
      let sys = Core.System.create sc (Sr.abku 2) (Core.Bins.of_loads [| 5; 3; 0; 2 |]) in
      Core.System.run g sys ~steps:500;
      Alcotest.(check int) "balls conserved" 10
        (Core.Bins.num_balls (Core.System.bins sys));
      check_invariants "system bins" (Core.System.bins sys))
    [ Core.Scenario.A; Core.Scenario.B ]

let test_system_run_until () =
  let g = rng () in
  let sys =
    Core.System.create Core.Scenario.A (Sr.abku 2)
      (Core.Bins.of_loads [| 10; 0; 0; 0; 0 |])
  in
  match
    Core.System.run_until g sys ~pred:(fun s -> Core.System.max_load s <= 4)
      ~limit:100_000
  with
  | Some t -> Alcotest.(check bool) "found" true (t > 0)
  | None -> Alcotest.fail "never recovered"

let test_system_matches_normalized_chain_law () =
  (* The identity-based system and the normalized chain must agree in law:
     compare max-load distributions after a fixed number of steps. *)
  let reps = 4000 and steps = 50 in
  List.iter
    (fun sc ->
      let h_sys = Stats.Histogram.create () in
      let h_chain = Stats.Histogram.create () in
      let g = rng ~seed:5 () in
      for _ = 1 to reps do
        let sys = Core.System.create sc (Sr.abku 2) (Core.Bins.of_loads [| 6; 0; 0 |]) in
        Core.System.run g sys ~steps;
        Stats.Histogram.add h_sys (Core.System.max_load sys);
        let p = Core.Dynamic_process.make sc (Sr.abku 2) ~n:3 in
        let v = Mv.of_load_vector (Lv.all_in_one ~n:3 ~m:6) in
        for _ = 1 to steps do
          Core.Dynamic_process.step_in_place p g v
        done;
        Stats.Histogram.add h_chain (Mv.max_load v)
      done;
      for load = 0 to 6 do
        let a = Stats.Histogram.fraction_at_least h_sys load in
        let b = Stats.Histogram.fraction_at_least h_chain load in
        if Float.abs (a -. b) > 0.04 then
          Alcotest.failf "scenario %s: load %d tail %f vs %f"
            (Core.Scenario.name sc) load a b
      done)
    [ Core.Scenario.A; Core.Scenario.B ]

let test_static_process () =
  let g = rng () in
  let bins = Core.Static_process.run (Sr.abku 2) g ~n:50 ~m:50 in
  Alcotest.(check int) "all placed" 50 (Core.Bins.num_balls bins);
  check_invariants "static" bins;
  let bins1, avg = Core.Static_process.run_stats (Sr.abku 3) g ~n:20 ~m:40 in
  Alcotest.(check int) "placed" 40 (Core.Bins.num_balls bins1);
  Alcotest.(check (float 1e-9)) "avg probes" 3. avg

let test_static_two_choices_beat_one () =
  (* The Azar et al. contrast, statistically: median max load with d = 2 is
     below d = 1 for n = m = 2000. *)
  let g = rng ~seed:2 () in
  let med rule =
    let samples = Core.Static_process.max_load_samples rule g ~n:2000 ~m:2000 ~reps:7 in
    Stats.Quantile.median (Stats.Quantile.of_ints samples)
  in
  let m1 = med (Sr.abku 1) and m2 = med (Sr.abku 2) in
  Alcotest.(check bool)
    (Printf.sprintf "d=2 (%f) < d=1 (%f)" m2 m1)
    true (m2 < m1)

let test_recovery_measure () =
  let spec =
    { Core.Recovery.scenario = Core.Scenario.A; rule = Sr.abku 2; n = 16; m = 16 }
  in
  let rngm = rng ~seed:77 () in
  let m = Core.Recovery.measure ~rng:rngm ~reps:10 spec ~target:3 ~limit:200_000 in
  Alcotest.(check int) "no failures" 0 m.Coupling.Coalescence.failures;
  Alcotest.(check bool) "positive recovery time" true (m.Coupling.Coalescence.median > 0.)

let test_recovery_trajectory_reaches_target () =
  let spec =
    { Core.Recovery.scenario = Core.Scenario.A; rule = Sr.abku 2; n = 16; m = 16 }
  in
  let rngm = rng ~seed:78 () in
  let traj = Core.Recovery.trajectory ~rng:rngm spec ~every:50 ~points:100 in
  let first_step, first_load = traj.(0) in
  Alcotest.(check int) "starts at 0" 0 first_step;
  Alcotest.(check int) "starts adversarial" 16 first_load;
  let _, last_load = traj.(99) in
  Alcotest.(check bool) "recovered" true (last_load <= 4)

let test_recovery_stationary () =
  let spec =
    { Core.Recovery.scenario = Core.Scenario.B; rule = Sr.abku 2; n = 16; m = 16 }
  in
  let rngm = rng ~seed:79 () in
  let mean, worst =
    Core.Recovery.stationary_max_load ~rng:rngm spec ~burn_in:2000 ~every:16
      ~samples:100
  in
  Alcotest.(check bool) "mean sane" true (mean >= 1. && mean <= 6.);
  Alcotest.(check bool) "worst sane" true (worst >= 1 && worst <= 10)

let test_open_process_step () =
  let g = rng () in
  let p = Core.Open_process.make (Sr.abku 2) ~n:4 in
  let bins = Core.Bins.of_loads [| 2; 1; 0; 0 |] in
  for _ = 1 to 200 do
    let before = Core.Bins.num_balls bins in
    Core.Open_process.step p g bins;
    let after = Core.Bins.num_balls bins in
    if abs (after - before) > 1 then Alcotest.fail "population jumped";
    check_invariants "open" bins
  done

let test_open_process_empty_removal_is_noop () =
  let g = rng () in
  let p = Core.Open_process.make ~insert_probability:0.01 (Sr.abku 1) ~n:2 in
  let bins = Core.Bins.create ~n:2 in
  for _ = 1 to 100 do
    Core.Open_process.step p g bins
  done;
  Alcotest.(check bool) "non-negative population" true (Core.Bins.num_balls bins >= 0)

let test_open_coupled_coalesces () =
  let p = Core.Open_process.make (Sr.abku 2) ~n:4 in
  let c = Core.Open_process.coupled p in
  let g = rng ~seed:13 () in
  let x = Mv.of_load_vector (Lv.all_in_one ~n:4 ~m:8) in
  let y = Mv.of_load_vector (Lv.of_array [| 0; 0; 0; 0 |]) in
  match Coupling.Coalescence.time c g x y ~limit:200_000 with
  | Some t -> Alcotest.(check bool) "met" true (t > 0)
  | None -> Alcotest.fail "open coupling did not coalesce"

let test_open_process_invalid () =
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Open_process.make: probability must be in (0,1)")
    (fun () -> ignore (Core.Open_process.make ~insert_probability:1.5 (Sr.abku 1) ~n:2))

let test_relocation_conserves_and_helps () =
  let g = rng ~seed:4 () in
  let reloc = Core.Relocation.make Core.Scenario.A (Sr.abku 2) ~relocations:2 ~n:8 in
  Alcotest.(check int) "attempts" 2 (Core.Relocation.relocation_attempts reloc);
  let bins = Core.Bins.of_loads (Array.init 8 (fun i -> if i = 0 then 16 else 0)) in
  for _ = 1 to 200 do
    Core.Relocation.step reloc g bins;
    Alcotest.(check int) "balls conserved" 16 (Core.Bins.num_balls bins);
    check_invariants "relocation" bins
  done;
  (* With two relocations per step, 200 steps flatten the spike well below
     the starting 16. *)
  Alcotest.(check bool) "max reduced" true (Core.Bins.max_load bins <= 6)

let test_relocation_name () =
  let r = Core.Relocation.make Core.Scenario.B (Sr.abku 2) ~relocations:1 ~n:4 in
  Alcotest.(check string) "name" "Ib-ABKU[2]+reloc1" (Core.Relocation.name r)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("int_vec", test_int_vec);
      ("bins create", test_bins_create);
      ("bins of_loads", test_bins_of_loads);
      ("bins add/remove", test_bins_add_remove);
      ("bins remove empty", test_bins_remove_empty);
      ("bins move_ball", test_bins_move_ball);
      ("bins copy independent", test_bins_copy_independent);
      ("uniform removal law", test_bins_uniform_removal_law);
      ("nonempty removal law", test_bins_nonempty_removal_law);
      ("insert least of d", test_insert_with_rule_least_of_d);
      ("system conserves balls", test_system_conserves_balls);
      ("system run_until", test_system_run_until);
      ("system = normalized chain (law)", test_system_matches_normalized_chain_law);
      ("static process", test_static_process);
      ("static: two choices beat one", test_static_two_choices_beat_one);
      ("recovery measure", test_recovery_measure);
      ("recovery trajectory", test_recovery_trajectory_reaches_target);
      ("recovery stationary", test_recovery_stationary);
      ("open process step", test_open_process_step);
      ("open empty removal noop", test_open_process_empty_removal_is_noop);
      ("open coupling coalesces", test_open_coupled_coalesces);
      ("open process invalid", test_open_process_invalid);
      ("relocation", test_relocation_conserves_and_helps);
      ("relocation name", test_relocation_name);
    ]
  @ List.map QCheck_alcotest.to_alcotest [ qcheck_bins_random_ops ]
