(* Tests for matrices, chains, partition spaces and exact analysis. *)

module M = Markov.Matrix
module Lv = Loadvec.Load_vector

let feq ?(tol = 1e-9) a b = Float.abs (a -. b) <= tol

let test_matrix_identity_mul () =
  let a = M.create ~rows:2 ~cols:2 in
  M.set a 0 0 1.;
  M.set a 0 1 2.;
  M.set a 1 0 3.;
  M.set a 1 1 4.;
  let i = M.identity 2 in
  Alcotest.(check (float 1e-12)) "left id" 0. (M.max_abs_diff (M.mul i a) a);
  Alcotest.(check (float 1e-12)) "right id" 0. (M.max_abs_diff (M.mul a i) a)

let test_matrix_mul_known () =
  let a = M.create ~rows:2 ~cols:3 in
  let b = M.create ~rows:3 ~cols:2 in
  (* a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12] *)
  List.iteri (fun k x -> M.set a (k / 3) (k mod 3) x) [ 1.; 2.; 3.; 4.; 5.; 6. ];
  List.iteri (fun k x -> M.set b (k / 2) (k mod 2) x) [ 7.; 8.; 9.; 10.; 11.; 12. ];
  let c = M.mul a b in
  Alcotest.(check (float 1e-12)) "c00" 58. (M.get c 0 0);
  Alcotest.(check (float 1e-12)) "c01" 64. (M.get c 0 1);
  Alcotest.(check (float 1e-12)) "c10" 139. (M.get c 1 0);
  Alcotest.(check (float 1e-12)) "c11" 154. (M.get c 1 1)

let test_matrix_vec_mul () =
  let m = M.create ~rows:2 ~cols:2 in
  M.set m 0 0 0.5;
  M.set m 0 1 0.5;
  M.set m 1 0 1.;
  let v = M.vec_mul [| 0.4; 0.6 |] m in
  Alcotest.(check (float 1e-12)) "v0" 0.8 v.(0);
  Alcotest.(check (float 1e-12)) "v1" 0.2 v.(1)

let test_matrix_stochastic () =
  let m = M.create ~rows:2 ~cols:2 in
  M.set m 0 0 0.3;
  M.set m 0 1 0.7;
  M.set m 1 0 1.0;
  Alcotest.(check bool) "stochastic" true (M.is_stochastic m);
  M.set m 1 0 0.9;
  Alcotest.(check bool) "not stochastic" false (M.is_stochastic m)

let test_matrix_invalid () =
  Alcotest.check_raises "bad size" (Invalid_argument "Matrix.create: non-positive size")
    (fun () -> ignore (M.create ~rows:0 ~cols:2));
  let a = M.create ~rows:2 ~cols:2 and b = M.create ~rows:3 ~cols:2 in
  Alcotest.check_raises "mul mismatch"
    (Invalid_argument "Matrix.mul: dimension mismatch") (fun () ->
      ignore (M.mul a b))

(* Chain is now only the functional one-step view; driving loops live
   in Engine.Sim.  The step field composes like any function. *)
let test_chain_step_view () =
  let c = Markov.Chain.make (fun _g s -> s + 1) in
  let g = Prng.Rng.create () in
  let s = ref 0 in
  for _ = 1 to 10 do
    s := c.Markov.Chain.step g !s
  done;
  Alcotest.(check int) "10 steps" 10 !s;
  let doubler = Markov.Chain.make (fun _g s -> s * 2) in
  Alcotest.(check int) "composes" 22
    (doubler.Markov.Chain.step g (c.Markov.Chain.step g 10))

(* The randomness really flows through: a coin-flip walk driven by two
   identically-seeded generators replays; a different seed diverges. *)
let test_chain_step_uses_rng () =
  let c = Markov.Chain.make (fun g s -> s + if Prng.Rng.bool g then 1 else -1) in
  let run seed =
    let g = Prng.Rng.create ~seed () in
    let s = ref 0 in
    for _ = 1 to 100 do
      s := c.Markov.Chain.step g !s
    done;
    !s
  in
  Alcotest.(check int) "same seed replays" (run 5) (run 5);
  Alcotest.(check bool) "walk moved or cancelled, parity even" true
    ((run 5 + 100) mod 2 = 0)

let test_partition_count_small () =
  (* Partitions of 4 into at most 2 parts: 4, 3+1, 2+2. *)
  Alcotest.(check int) "p(4,2)" 3 (Markov.Partition_space.count ~n:2 ~m:4);
  (* Partitions of 5 (n >= 5): 7. *)
  Alcotest.(check int) "p(5)" 7 (Markov.Partition_space.count ~n:5 ~m:5);
  Alcotest.(check int) "m=0" 1 (Markov.Partition_space.count ~n:3 ~m:0)

let test_partition_enumerate () =
  let states = Markov.Partition_space.enumerate ~n:3 ~m:4 in
  Alcotest.(check int) "count matches" (Markov.Partition_space.count ~n:3 ~m:4)
    (Array.length states);
  Array.iter
    (fun v ->
      Alcotest.(check int) "total" 4 (Lv.total v);
      Alcotest.(check int) "dim" 3 (Lv.dim v);
      Alcotest.(check bool) "normalized" true (Lv.is_normalized (Lv.to_array v)))
    states;
  (* All distinct. *)
  let tbl = Hashtbl.create 16 in
  Array.iter (fun v -> Hashtbl.replace tbl v ()) states;
  Alcotest.(check int) "distinct" (Array.length states) (Hashtbl.length tbl)

let test_partition_count_matches_enumerate_sweep () =
  for n = 1 to 5 do
    for m = 0 to 8 do
      Alcotest.(check int)
        (Printf.sprintf "count n=%d m=%d" n m)
        (Array.length (Markov.Partition_space.enumerate ~n ~m))
        (Markov.Partition_space.count ~n ~m)
    done
  done

let test_partition_index () =
  let states = Markov.Partition_space.enumerate ~n:3 ~m:5 in
  let idx = Markov.Partition_space.index_of_space states in
  Alcotest.(check int) "size" (Array.length states)
    (Markov.Partition_space.size idx);
  Array.iteri
    (fun i v ->
      Alcotest.(check int) "roundtrip" i (Markov.Partition_space.find idx v))
    states;
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Markov.Partition_space.find idx (Lv.of_array [| 9; 9; 9 |])))

(* A two-state chain with known stationary distribution and mixing rate:
   P = [[1-p, p], [q, 1-q]], pi = (q, p)/(p+q). *)
let two_state p q =
  Markov.Exact.build ~states:[| "x"; "y" |] ~transitions:(function
    | "x" -> [ ("x", 1. -. p); ("y", p) ]
    | _ -> [ ("x", q); ("y", 1. -. q) ])

let test_exact_stationary_two_state () =
  let c = two_state 0.3 0.1 in
  let pi = Markov.Exact.stationary c in
  Alcotest.(check bool) "pi x" true (feq ~tol:1e-9 pi.(0) 0.25);
  Alcotest.(check bool) "pi y" true (feq ~tol:1e-9 pi.(1) 0.75)

let test_exact_tv () =
  Alcotest.(check (float 1e-12)) "tv" 0.5
    (Markov.Exact.tv_distance [| 1.; 0. |] [| 0.5; 0.5 |]);
  Alcotest.(check (float 1e-12)) "tv self" 0.
    (Markov.Exact.tv_distance [| 0.3; 0.7 |] [| 0.3; 0.7 |])

let test_exact_distribution_after () =
  let c = two_state 0.5 0.5 in
  let d = Markov.Exact.distribution_after c ~start:0 1 in
  Alcotest.(check bool) "after one step" true
    (feq d.(0) 0.5 && feq d.(1) 0.5);
  let d0 = Markov.Exact.distribution_after c ~start:0 0 in
  Alcotest.(check bool) "t=0 is point mass" true (feq d0.(0) 1.)

let test_exact_mixing_two_state () =
  (* For p = q = 1/2 the chain is exactly mixed after one step. *)
  let c = two_state 0.5 0.5 in
  Alcotest.(check int) "mixes in 1" 1 (Markov.Exact.mixing_time ~eps:0.01 c);
  (* Slow chain mixes slower. *)
  let slow = two_state 0.05 0.05 in
  Alcotest.(check bool) "slow chain slower" true
    (Markov.Exact.mixing_time ~eps:0.01 slow > 5)

let test_exact_mixing_monotone_eps () =
  let c = two_state 0.2 0.3 in
  let t1 = Markov.Exact.mixing_time ~eps:0.25 c in
  let t2 = Markov.Exact.mixing_time ~eps:0.01 c in
  Alcotest.(check bool) "smaller eps, larger tau" true (t2 >= t1)

let test_exact_build_invalid () =
  Alcotest.check_raises "bad row" (Invalid_argument "Exact.build: row does not sum to 1")
    (fun () ->
      ignore
        (Markov.Exact.build ~states:[| 0 |] ~transitions:(fun _ -> [ (0, 0.5) ])));
  Alcotest.check_raises "unknown successor"
    (Invalid_argument "Exact.build: successor outside state space") (fun () ->
      ignore
        (Markov.Exact.build ~states:[| 0 |] ~transitions:(fun _ -> [ (1, 1.) ])))

let test_exact_build_merges_duplicates () =
  let c =
    Markov.Exact.build ~states:[| 0; 1 |] ~transitions:(function
      | 0 -> [ (1, 0.5); (1, 0.5) ]
      | _ -> [ (0, 1.) ])
  in
  Alcotest.(check (float 1e-12)) "merged" 1. (M.get (Markov.Exact.matrix c) 0 1)

module S = Markov.Sparse

let test_sparse_construction () =
  (* Rows given out of order with duplicate coordinates and an explicit
     zero: construction sorts, merges and drops. *)
  let s =
    S.of_rows ~rows:3 ~cols:3 (function
      | 0 -> [ (2, 0.25); (0, 0.5); (2, 0.25); (1, 0.) ]
      | _ -> [ (1, 1.) ])
  in
  Alcotest.(check int) "nnz" 4 (S.nnz s);
  Alcotest.(check int) "rows" 3 (S.rows s);
  Alcotest.(check int) "cols" 3 (S.cols s);
  let seen = ref [] in
  S.row_iter s 0 ~f:(fun j v -> seen := (j, v) :: !seen);
  Alcotest.(check bool) "row 0 sorted and merged" true
    (List.rev !seen = [ (0, 0.5); (2, 0.5) ]);
  Alcotest.(check bool) "row sums" true
    (Array.for_all (fun x -> feq x 1.) (S.row_sums s));
  Alcotest.(check bool) "stochastic" true (S.is_stochastic s);
  let t =
    S.of_triplets ~rows:2 ~cols:3 [ (0, 0, 0.25); (1, 1, 1.); (0, 0, 0.25); (0, 2, 0.5) ]
  in
  Alcotest.(check int) "triplets merge duplicates" 3 (S.nnz t);
  Alcotest.(check bool) "rectangular is not stochastic" true
    (not (S.is_stochastic t))

let test_sparse_dense_roundtrip () =
  let m = M.create ~rows:3 ~cols:3 in
  M.set m 0 0 0.5;
  M.set m 0 2 0.5;
  M.set m 1 1 1.;
  M.set m 2 0 0.25;
  M.set m 2 1 0.75;
  let s = S.of_dense m in
  Alcotest.(check int) "nnz of dense" 5 (S.nnz s);
  Alcotest.(check (float 1e-15)) "roundtrip exact" 0.
    (M.max_abs_diff (S.to_dense s) m);
  (* spmv agrees with the dense product, including a zero input entry
     (whose row is skipped). *)
  let v = [| 0.2; 0.; 0.8 |] in
  let sparse_out = S.spmv v s in
  let dense_out = M.vec_mul v m in
  Alcotest.(check bool) "spmv = vec_mul" true
    (Array.for_all2 (fun a b -> feq ~tol:1e-15 a b) sparse_out dense_out);
  let dst = Array.make 3 9. in
  S.spmv_into s ~src:v ~dst;
  Alcotest.(check bool) "spmv_into overwrites" true
    (Array.for_all2 (fun a b -> a = b) dst sparse_out)

(* Satellite regression: the historical stopping rule "successive
   iterates are close" stops far from pi on a slowly-mixing chain.  For
   P = [[1-p, p], [q, 1-q]] with p = 0.004, q = 0.001, pi = (0.2, 0.8)
   but the iterate drifts from (0.5, 0.5) by at most ~(p+q)/2 per step,
   so at tol = 1e-3 the old rule (kept in Dense) stops near (0.4, 0.6).
   The gap-corrected residual rule must keep iterating until the true
   error is ~tol. *)
let test_exact_stationary_near_reducible () =
  let c = two_state 0.004 0.001 in
  let pi = Markov.Exact.stationary ~tol:1e-3 c in
  Alcotest.(check bool)
    (Printf.sprintf "gap-corrected pi0 %.4f within 1e-2 of 0.2" pi.(0))
    true
    (Float.abs (pi.(0) -. 0.2) <= 1e-2);
  (* The true residual is below tol as well. *)
  let pi_step = Markov.Sparse.spmv pi (Markov.Exact.sparse c) in
  Alcotest.(check bool) "residual |piP - pi| <= tol" true
    (Markov.Exact.tv_distance pi pi_step *. 2. <= 1e-3);
  let old = Markov.Exact.Dense.stationary ~tol:1e-3 c in
  Alcotest.(check bool)
    (Printf.sprintf "historical rule stops early (pi0 %.4f)" old.(0))
    true
    (Float.abs (old.(0) -. 0.2) > 0.05)

let test_exact_stationary_cache () =
  let c = two_state 0.3 0.1 in
  let pi1 = Markov.Exact.stationary c in
  let pi2 = Markov.Exact.stationary c in
  Alcotest.(check bool) "cached result identical" true
    (Array.for_all2 (fun a b -> a = b) pi1 pi2);
  (* A looser request reuses the tighter cached value bit-identically. *)
  let pi3 = Markov.Exact.stationary ~tol:1e-6 c in
  Alcotest.(check bool) "looser tol served from cache" true
    (Array.for_all2 (fun a b -> a = b) pi1 pi3)

let test_exact_accessors () =
  let c = two_state 0.3 0.1 in
  let sts = Markov.Exact.states c in
  Alcotest.(check (array string)) "states in index order" [| "x"; "y" |] sts;
  Alcotest.(check int) "sparse nnz" 4 (S.nnz (Markov.Exact.sparse c));
  Alcotest.(check (float 1e-15)) "dense view = to_dense sparse" 0.
    (M.max_abs_diff (Markov.Exact.matrix c) (S.to_dense (Markov.Exact.sparse c)))

let test_builder_reachable_and_mix () =
  (* A 4-cycle plus an unreachable island: BFS from 0 finds the cycle in
     discovery order and build_mix agrees with the direct pipeline. *)
  let transitions i =
    [ ((i + 1) mod 4, 0.5); (i, 0.5) ]
  in
  let states = Markov.Exact_builder.reachable_states ~root:0 ~transitions () in
  Alcotest.(check (array int)) "BFS discovery order" [| 0; 1; 2; 3 |] states;
  let a =
    Markov.Exact_builder.build_mix ~eps:0.25
      (Markov.Exact_builder.reachable ~root:0)
      ~transitions
  in
  Alcotest.(check int) "state count" 4 a.Markov.Exact_builder.state_count;
  let direct =
    Markov.Exact.mixing_time ~eps:0.25
      (Markov.Exact.build ~states ~transitions)
  in
  Alcotest.(check int) "tau agrees with direct build" direct
    a.Markov.Exact_builder.tau;
  Alcotest.(check bool) "timings non-negative" true
    (a.Markov.Exact_builder.build_seconds >= 0.
    && a.Markov.Exact_builder.mix_seconds >= 0.)

let test_worst_tv_profile_drop_below () =
  let c = two_state 0.2 0.3 in
  let exact = Markov.Exact.worst_tv_profile c ~max_t:40 in
  let dropped = Markov.Exact.worst_tv_profile ~drop_below:1e-9 c ~max_t:40 in
  Alcotest.(check bool) "profiles within drop_below" true
    (Array.for_all2 (fun a b -> Float.abs (a -. b) <= 1e-9) exact dropped)

module Si = Markov.State_index
module B = Markov.Blocked_csr
module Ck = Markov.Exact_checkpoint

let test_state_index_basics () =
  let hash, equal = Si.structural () in
  let idx = Si.create ~hash ~equal 2 in
  (* Insert enough states to force several growths past the initial
     capacity; ids must come out in first-seen order. *)
  for i = 0 to 99 do
    Alcotest.(check int) "fresh id" i (Si.add idx (i * 7))
  done;
  Alcotest.(check int) "size" 100 (Si.size idx);
  Alcotest.(check int) "re-add returns existing id" 42 (Si.add idx (42 * 7));
  Alcotest.(check int) "size unchanged" 100 (Si.size idx);
  Alcotest.(check (option int)) "find hit" (Some 3) (Si.find idx 21);
  Alcotest.(check (option int)) "find miss" None (Si.find idx 1_000_000);
  Alcotest.(check int) "get" 14 (Si.get idx 2);
  let arr = Si.to_array idx in
  Alcotest.(check int) "to_array length" 100 (Array.length arr);
  Alcotest.(check bool) "to_array in id order" true
    (Array.for_all2 (fun a b -> a = b) arr (Array.init 100 (fun i -> i * 7)))

(* A deterministic pseudo-random stochastic matrix with irregular row
   fill, for roundtrip checks. *)
let stochastic_sparse n =
  S.of_rows ~rows:n ~cols:n (fun i ->
      let k = 1 + (i mod 4) in
      let cols = List.init k (fun j -> ((i * 13) + (j * 7) + 1) mod n) in
      let cols = List.sort_uniq compare cols in
      let w = 1. /. float_of_int (List.length cols) in
      List.map (fun j -> (j, w)) cols)

let check_same_sparse msg a b =
  Alcotest.(check int) (msg ^ ": nnz") (S.nnz a) (S.nnz b);
  Alcotest.(check (float 1e-15)) (msg ^ ": entries") 0.
    (M.max_abs_diff (S.to_dense a) (S.to_dense b))

let test_blocked_roundtrip () =
  let n = 17 in
  let s = stochastic_sparse n in
  List.iter
    (fun block_rows ->
      let b = B.of_sparse ~block_rows s in
      Alcotest.(check int) "rows" n (B.rows b);
      Alcotest.(check int) "cols" n (B.cols b);
      Alcotest.(check int)
        (Printf.sprintf "block_count br=%d" block_rows)
        ((n + block_rows - 1) / block_rows)
        (B.block_count b);
      Alcotest.(check bool) "in memory" true (B.in_memory b);
      Alcotest.(check bool) "stochastic" true (B.is_stochastic b);
      check_same_sparse
        (Printf.sprintf "roundtrip br=%d" block_rows)
        s (B.to_sparse b);
      (* Kernel product agrees with the flat sparse product. *)
      let src = Array.init n (fun i -> float_of_int ((i * 5) mod 7) /. 21.) in
      let dst = Array.make n nan in
      B.spmv (B.kernel b) ~src ~dst;
      let expect = S.spmv src s in
      Alcotest.(check bool)
        (Printf.sprintf "spmv br=%d" block_rows)
        true
        (Array.for_all2 (fun a b -> feq ~tol:1e-15 a b) dst expect))
    [ 1; 3; n; 2 * n ]

let test_blocked_spill_roundtrip () =
  let n = 11 in
  let s = stochastic_sparse n in
  let path = Filename.temp_file "bcsr" ".blk" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let b = B.of_sparse ~block_rows:4 ~spill:path s in
      Alcotest.(check bool) "spilled, not in memory" false (B.in_memory b);
      Alcotest.(check (option string)) "path recorded" (Some path) (B.path b);
      check_same_sparse "spilled roundtrip" s (B.to_sparse b);
      (* Fused statistic on the streaming (disk) path. *)
      let pi = Array.make n (1. /. float_of_int n) in
      let src = Array.init n (fun i -> if i = 0 then 1. else 0.) in
      let dst = Array.make n nan in
      let tv = B.step_tv (B.kernel b) ~pi ~src ~dst in
      let expect = S.spmv src s in
      let tv_expect =
        0.5 *. Array.fold_left ( +. ) 0.
          (Array.mapi (fun i x -> Float.abs (x -. pi.(i))) expect)
      in
      Alcotest.(check (float 1e-15)) "fused tv on disk path" tv_expect tv;
      B.close b;
      (* Reopening the finalized file restores the matrix. *)
      let reopened = B.open_file path in
      Alcotest.(check int) "reopened nnz" (S.nnz s) (B.nnz reopened);
      check_same_sparse "reopened roundtrip" s (B.to_sparse reopened);
      B.close reopened)

let test_blocked_multi_bitwise () =
  (* The batched kernel must reproduce the single-vector fused products
     bit for bit, vector by vector — dst contents and TV statistics —
     across several chained steps, for both in-memory and mixed batch
     widths.  This is the contract the batched sweeps in Exact (TV
     profiles, mixing pruning) rely on for their exactness claims. *)
  let n = 37 in
  let s = stochastic_sparse n in
  let b = B.of_sparse ~block_rows:5 s in
  let kern = B.kernel b in
  let pi = Array.init n (fun i -> float_of_int (1 + (i mod 3)) /. 74.) in
  (* Not a distribution; irrelevant — only summation order matters. *)
  List.iter
    (fun nb ->
      let mk_start v =
        let a = Array.make n 0. in
        a.(v mod n) <- 1.;
        a
      in
      let multi_cur = Array.init nb (fun v -> mk_start (v * 11)) in
      let multi_nxt = Array.init nb (fun _ -> Array.make n nan) in
      let single_cur = Array.init nb (fun v -> mk_start (v * 11)) in
      let single_nxt = Array.init nb (fun _ -> Array.make n nan) in
      for step = 1 to 4 do
        let ds =
          B.step_tv_multi kern ~pi ~srcs:multi_cur ~dsts:multi_nxt
        in
        for v = 0 to nb - 1 do
          let d =
            B.step_tv kern ~pi ~src:single_cur.(v) ~dst:single_nxt.(v)
          in
          Alcotest.(check bool)
            (Printf.sprintf "nb=%d step=%d vec=%d: tv bits" nb step v)
            true
            (Int64.equal (Int64.bits_of_float d) (Int64.bits_of_float ds.(v)));
          Alcotest.(check bool)
            (Printf.sprintf "nb=%d step=%d vec=%d: dst bits" nb step v)
            true
            (Array.for_all2
               (fun a b ->
                 Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
               single_nxt.(v) multi_nxt.(v));
          Array.blit multi_nxt.(v) 0 multi_cur.(v) 0 n;
          Array.blit single_nxt.(v) 0 single_cur.(v) 0 n
        done
      done)
    [ 1; 2; 3; 7 ]

let test_blocked_killed_build_rejected () =
  let path = Filename.temp_file "bcsr" ".blk" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* Spill a few blocks but never [finish]: no trailer is written,
         so the file must be refused — this is the crash-safety story
         for killed builds. *)
      let bld = B.builder ~block_rows:2 ~spill:path () in
      for _ = 1 to 6 do
        B.add_row bld [ (0, 0.5); (1, 0.5) ]
      done;
      Alcotest.(check bool) "killed build rejected" true
        (match B.open_file path with
        | (_ : B.t) -> false
        | exception Failure _ -> true);
      ignore (B.finish bld ~cols:2))

let test_blocked_builder_invalid () =
  Alcotest.check_raises "negative column"
    (Invalid_argument "Blocked_csr.add_row: negative column index") (fun () ->
      B.add_row (B.builder ()) [ (-1, 1.) ]);
  Alcotest.check_raises "empty matrix"
    (Invalid_argument "Blocked_csr.finish: empty matrix") (fun () ->
      ignore (B.finish (B.builder ()) ~cols:1));
  Alcotest.check_raises "column out of bounds"
    (Invalid_argument "Blocked_csr.finish: column index out of bounds")
    (fun () ->
      let bld = B.builder () in
      B.add_row bld [ (3, 1.) ];
      ignore (B.finish bld ~cols:2))

let test_builder_streaming_equals_direct () =
  (* The streaming Exact_builder path and the classic Exact.build must
     produce the same chain: same analysis results, same index. *)
  let states = Array.init 23 (fun i -> i) in
  let transitions i =
    let n = Array.length states in
    [ ((i + 1) mod n, 0.5); ((i * 2) mod n, 0.25); (i, 0.25) ]
  in
  let direct = Markov.Exact.build ~states ~transitions in
  let streamed =
    Markov.Exact_builder.build ~block_rows:5
      (Markov.Exact_builder.enumerated states)
      ~transitions
  in
  Alcotest.(check int) "size" (Markov.Exact.size direct)
    (Markov.Exact.size streamed);
  Alcotest.(check (float 1e-15)) "same matrix" 0.
    (M.max_abs_diff (Markov.Exact.matrix direct) (Markov.Exact.matrix streamed));
  let pi_d = Markov.Exact.stationary direct in
  let pi_s = Markov.Exact.stationary streamed in
  Alcotest.(check bool) "same stationary bits" true
    (Array.for_all2 (fun a b -> Float.equal a b) pi_d pi_s);
  Alcotest.(check int) "same tau"
    (Markov.Exact.mixing_time direct)
    (Markov.Exact.mixing_time streamed)

let test_mixing_starts_subset () =
  let c = two_state 0.2 0.3 in
  let tau = Markov.Exact.mixing_time ~eps:0.01 c in
  let t0 = Markov.Exact.mixing_time ~eps:0.01 ~starts:[| 0 |] c in
  let t1 = Markov.Exact.mixing_time ~eps:0.01 ~starts:[| 1 |] c in
  Alcotest.(check int) "max over singletons = full tau" tau (max t0 t1);
  Alcotest.(check int) "all starts explicitly" tau
    (Markov.Exact.mixing_time ~eps:0.01 ~starts:[| 0; 1 |] c);
  Alcotest.check_raises "empty starts"
    (Invalid_argument "Exact.mixing_time: empty starts") (fun () ->
      ignore (Markov.Exact.mixing_time ~starts:[||] c));
  Alcotest.check_raises "start out of range"
    (Invalid_argument "Exact.mixing_time: start out of range") (fun () ->
      ignore (Markov.Exact.mixing_time ~starts:[| 2 |] c))

let sample_snapshot () =
  {
    Ck.states = 7;
    nnz = 19;
    phase =
      Ck.Mixing
        {
          eps = 0.25;
          pi_tol = 1e-12;
          pi = [| 0.25; 0.75 |];
          tau_hat = 9;
          completed = [ (1, 9); (0, 4) ];
          inflight =
            Some { Ck.start = 3; t_base = 8; lo = 8; hi = 16;
                   base = [| 0.5; 0.5 |] };
        };
  }

let test_checkpoint_file_roundtrip () =
  let path = Filename.temp_file "ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let snap = sample_snapshot () in
      Ck.save_file path snap;
      (match Ck.load_file path with
      | None -> Alcotest.fail "roundtrip lost the snapshot"
      | Some got -> Alcotest.(check bool) "roundtrip equal" true (got = snap));
      (* A Stationary-phase snapshot roundtrips too. *)
      let snap2 =
        { Ck.states = 3; nnz = 5;
          phase = Ck.Stationary
              { tol = 1e-12; iter = 41; prev_r = 0.125;
                dist = [| 0.1; 0.2; 0.7 |] } }
      in
      Ck.save_file path snap2;
      Alcotest.(check bool) "stationary roundtrip" true
        (Ck.load_file path = Some snap2);
      (* Corruption and foreign files read as "no checkpoint". *)
      let oc = open_out_bin path in
      output_string oc "definitely not a checkpoint";
      close_out oc;
      Alcotest.(check bool) "foreign file" true (Ck.load_file path = None);
      Sys.remove path;
      Alcotest.(check bool) "missing file" true (Ck.load_file path = None))

let test_checkpoint_sink_throttle () =
  let sink, cell = Ck.memory_sink ~min_interval:3600. () in
  Alcotest.(check bool) "starts empty" true (Ck.resume sink = None);
  let snap = sample_snapshot () in
  let built = ref 0 in
  let thunk () = incr built; snap in
  Ck.offer sink thunk;
  Alcotest.(check int) "first offer stores" 1 !built;
  Alcotest.(check bool) "stored" true (!cell = Some snap);
  cell := None;
  Ck.offer sink thunk;
  Alcotest.(check int) "second offer throttled, thunk skipped" 1 !built;
  Alcotest.(check bool) "no store" true (!cell = None);
  (* Commits ignore the throttle. *)
  Ck.commit sink snap;
  Alcotest.(check bool) "commit unconditional" true (!cell = Some snap);
  Alcotest.(check bool) "resume reads back" true (Ck.resume sink = Some snap)

let test_mixing_checkpoint_resume_file () =
  (* End-to-end through a file sink: interrupt nothing, just check that
     a fresh run writes a final snapshot and a second run resumes from
     it and reproduces tau. *)
  let path = Filename.temp_file "ckpt" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let c = two_state 0.05 0.02 in
      let sink = Ck.file_sink ~min_interval:0. path in
      let tau = Markov.Exact.mixing_time ~eps:0.01 ~checkpoint:sink c in
      Alcotest.(check bool) "final snapshot written" true
        (Ck.load_file path <> None);
      (* A fresh chain object resuming from the completed snapshot must
         agree without redoing the search. *)
      let c2 = two_state 0.05 0.02 in
      let sink2 = Ck.file_sink ~min_interval:0. path in
      Alcotest.(check int) "resumed tau identical" tau
        (Markov.Exact.mixing_time ~eps:0.01 ~checkpoint:sink2 c2))

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("matrix identity mul", test_matrix_identity_mul);
      ("matrix mul known", test_matrix_mul_known);
      ("matrix vec_mul", test_matrix_vec_mul);
      ("matrix stochastic", test_matrix_stochastic);
      ("matrix invalid", test_matrix_invalid);
      ("chain step view", test_chain_step_view);
      ("chain step uses rng", test_chain_step_uses_rng);
      ("partition count small", test_partition_count_small);
      ("partition enumerate", test_partition_enumerate);
      ("partition count sweep", test_partition_count_matches_enumerate_sweep);
      ("partition index", test_partition_index);
      ("exact stationary", test_exact_stationary_two_state);
      ("exact tv distance", test_exact_tv);
      ("exact distribution_after", test_exact_distribution_after);
      ("exact mixing two-state", test_exact_mixing_two_state);
      ("exact mixing monotone in eps", test_exact_mixing_monotone_eps);
      ("exact build invalid", test_exact_build_invalid);
      ("exact build merges duplicates", test_exact_build_merges_duplicates);
      ("sparse construction", test_sparse_construction);
      ("sparse/dense roundtrip + spmv", test_sparse_dense_roundtrip);
      ("stationary near-reducible", test_exact_stationary_near_reducible);
      ("stationary cache", test_exact_stationary_cache);
      ("exact accessors", test_exact_accessors);
      ("builder reachable + build_mix", test_builder_reachable_and_mix);
      ("profile drop_below", test_worst_tv_profile_drop_below);
      ("state index basics", test_state_index_basics);
      ("blocked csr roundtrip", test_blocked_roundtrip);
      ("blocked csr spill roundtrip", test_blocked_spill_roundtrip);
      ("blocked multi-vector kernel bitwise", test_blocked_multi_bitwise);
      ("blocked csr killed build rejected", test_blocked_killed_build_rejected);
      ("blocked csr builder invalid", test_blocked_builder_invalid);
      ("streaming build = direct build", test_builder_streaming_equals_direct);
      ("mixing_time starts subset", test_mixing_starts_subset);
      ("checkpoint file roundtrip", test_checkpoint_file_roundtrip);
      ("checkpoint sink throttle", test_checkpoint_sink_throttle);
      ("mixing checkpoint resume via file", test_mixing_checkpoint_resume_file);
    ]
