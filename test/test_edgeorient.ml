(* Tests for the edge orientation problem: identity-based greedy protocol,
   the Section 6 count-vector chain, their agreement in law, and the
   carpool reduction. *)

module O = Edgeorient.Orientation
module C = Edgeorient.Class_chain

let rng ?(seed = 42) () = Prng.Rng.create ~seed ()

let check_orientation_invariants name t =
  let diffs = O.discrepancies t in
  if Array.fold_left ( + ) 0 diffs <> 0 then Alcotest.failf "%s: sum not 0" name;
  let unf = Array.fold_left (fun a d -> Stdlib.max a (abs d)) 0 diffs in
  if unf <> O.unfairness t then
    Alcotest.failf "%s: unfairness %d vs tracked %d" name unf (O.unfairness t)

let test_create () =
  let t = O.create ~n:5 in
  Alcotest.(check int) "n" 5 (O.n t);
  Alcotest.(check int) "unfairness" 0 (O.unfairness t);
  Alcotest.(check int) "edges" 0 (O.edges_seen t);
  check_orientation_invariants "fresh" t;
  Alcotest.check_raises "n too small"
    (Invalid_argument "Orientation.create: need n >= 2") (fun () ->
      ignore (O.create ~n:1))

let test_of_discrepancies () =
  let t = O.of_discrepancies [| 2; -1; -1; 0 |] in
  Alcotest.(check int) "unfairness" 2 (O.unfairness t);
  Alcotest.(check int) "diff 0" 2 (O.discrepancy t 0);
  check_orientation_invariants "explicit" t;
  Alcotest.check_raises "bad sum"
    (Invalid_argument "Orientation.of_discrepancies: values must sum to 0")
    (fun () -> ignore (O.of_discrepancies [| 1; 0 |]))

let test_adversarial () =
  let t = O.adversarial ~n:6 in
  Alcotest.(check int) "unfairness" 3 (O.unfairness t);
  check_orientation_invariants "adversarial even" t;
  let t7 = O.adversarial ~n:7 in
  Alcotest.(check int) "odd unfairness" 4 (O.unfairness t7);
  check_orientation_invariants "adversarial odd" t7

let test_orient_manual () =
  let t = O.create ~n:3 in
  O.orient t ~src:0 ~dst:1;
  Alcotest.(check int) "src +1" 1 (O.discrepancy t 0);
  Alcotest.(check int) "dst -1" (-1) (O.discrepancy t 1);
  Alcotest.(check int) "edges" 1 (O.edges_seen t);
  Alcotest.(check int) "unfairness" 1 (O.unfairness t);
  check_orientation_invariants "after orient" t;
  Alcotest.check_raises "self loop" (Invalid_argument "Orientation.orient: bad endpoints")
    (fun () -> O.orient t ~src:1 ~dst:1)

let test_greedy_reduces_extremes () =
  (* Greedy between a +k and a -k vertex pushes both toward 0. *)
  let t = O.of_discrepancies [| 2; -2 |] in
  let g = rng () in
  O.greedy_step g t;
  Alcotest.(check int) "unfairness dropped" 1 (O.unfairness t)

let test_greedy_run_keeps_invariants () =
  let g = rng () in
  let t = O.adversarial ~n:9 in
  for _ = 1 to 2000 do
    O.greedy_step g t;
    check_orientation_invariants "greedy run" t
  done;
  Alcotest.(check int) "edges counted" 2000 (O.edges_seen t)

let test_greedy_recovers () =
  (* From the adversarial state, O(n^2 ln n) steps bring unfairness down
     to the O(log log n) regime. *)
  let g = rng ~seed:3 () in
  let n = 32 in
  let t = O.adversarial ~n in
  O.run g t ~steps:(n * n * 10);
  Alcotest.(check bool)
    (Printf.sprintf "unfairness %d small" (O.unfairness t))
    true
    (O.unfairness t <= 6)

let test_copy_independent () =
  let t = O.adversarial ~n:4 in
  let c = O.copy t in
  O.orient t ~src:0 ~dst:1;
  Alcotest.(check bool) "copy unchanged" true (O.unfairness c = 2)

(* ---- Class chain ---- *)

let test_class_chain_start () =
  let x = C.start ~n:5 in
  Alcotest.(check int) "n" 5 (C.n x);
  Alcotest.(check int) "unfairness" 0 (C.unfairness x);
  let counts = C.counts x in
  Alcotest.(check int) "all at diff 0" 5 counts.(5);
  Alcotest.(check int) "total" 5 (Array.fold_left ( + ) 0 counts)

let test_class_chain_of_discrepancies () =
  let x = C.of_discrepancies [| 2; 0; -2 |] in
  Alcotest.(check int) "unfairness" 2 (C.unfairness x);
  let counts = C.counts x in
  Alcotest.(check int) "diff 2 class" 1 counts.(1);
  Alcotest.(check int) "diff 0 class" 1 counts.(3);
  Alcotest.(check int) "diff -2 class" 1 counts.(5);
  Alcotest.(check int) "class->diff" 2 (C.discrepancy_of_class x 1)

let test_class_chain_step_invariants () =
  let g = rng () in
  let x = ref (C.adversarial ~n:8) in
  for _ = 1 to 3000 do
    x := C.step g !x;
    let counts = C.counts !x in
    Alcotest.(check int) "vertex count" 8 (Array.fold_left ( + ) 0 counts);
    (* Total discrepancy stays 0. *)
    let total = ref 0 in
    Array.iteri (fun i c -> total := !total + (c * C.discrepancy_of_class !x i)) counts;
    Alcotest.(check int) "discrepancy sum" 0 !total
  done

let test_class_chain_matches_identity_protocol_in_law () =
  (* Remark 1: the chain is the greedy protocol slowed by the lazy bit.
     Compare unfairness distributions: chain after 2k steps vs greedy
     after k steps (expected numbers of real orientations match). *)
  let n = 8 and reps = 3000 and k = 40 in
  let g = rng ~seed:15 () in
  let h_chain = Stats.Histogram.create () in
  let h_greedy = Stats.Histogram.create () in
  for _ = 1 to reps do
    let x = ref (C.adversarial ~n) in
    for _ = 1 to 2 * k do
      x := C.step g !x
    done;
    Stats.Histogram.add h_chain (C.unfairness !x);
    let t = O.adversarial ~n in
    O.run g t ~steps:k;
    Stats.Histogram.add h_greedy (O.unfairness t)
  done;
  (* Means within statistical tolerance (the slowdown is ~2 +- O(1/n),
     so allow a generous margin). *)
  let mc = Stats.Histogram.mean h_chain and mg = Stats.Histogram.mean h_greedy in
  Alcotest.(check bool)
    (Printf.sprintf "means close: chain %f greedy %f" mc mg)
    true
    (Float.abs (mc -. mg) < 0.35)

let test_emd () =
  let x = C.of_discrepancies [| 1; -1; 0 |] in
  let y = C.of_discrepancies [| 0; 0; 0 |] in
  Alcotest.(check int) "emd positive" 2 (C.emd x y);
  Alcotest.(check int) "emd self" 0 (C.emd x x);
  Alcotest.(check int) "symmetric" (C.emd x y) (C.emd y x);
  Alcotest.(check bool) "zero iff equal" true (C.emd x y > 0 && not (C.equal x y))

let test_g_tilde_detection () =
  (* y has two vertices at diff 0; x replaces them by +1 and -1: that is
     exactly x = y + e_lambda - 2e_{lambda+1} + e_{lambda+2}. *)
  let y = C.of_discrepancies [| 0; 0; 2; -2 |] in
  let x = C.of_discrepancies [| 1; -1; 2; -2 |] in
  (match C.g_tilde_lambda x y with
  | Some lambda ->
      Alcotest.(check int) "lambda is diff+1 class" 3 lambda
  | None -> Alcotest.fail "G-tilde not detected");
  Alcotest.(check (option int)) "not in reverse direction" None
    (C.g_tilde_lambda y x |> fun o -> o);
  Alcotest.(check (option int)) "unrelated states" None
    (C.g_tilde_lambda x (C.start ~n:4))

let test_coupled_faithful_and_coalesces () =
  let c = C.coupled () in
  let g = rng ~seed:21 () in
  let x = C.adversarial ~n:6 in
  let y = C.start ~n:6 in
  match Coupling.Coalescence.time c g x y ~limit:1_000_000 with
  | Some t -> Alcotest.(check bool) "met" true (t > 0)
  | None -> Alcotest.fail "edge coupling did not coalesce"

let test_coupled_sticky () =
  let c = C.coupled () in
  let g = rng ~seed:22 () in
  let x = ref (C.start ~n:5) and y = ref (C.start ~n:5) in
  for _ = 1 to 200 do
    let x', y' = c.Coupling.Coupled_chain.step g !x !y in
    x := x';
    y := y'
  done;
  Alcotest.(check bool) "still equal" true (C.equal !x !y)

let test_coupled_marginal_law () =
  (* The coupling's first marginal follows the chain law: compare
     unfairness distribution of coupled-x vs plain chain. *)
  let reps = 4000 and steps = 30 and n = 6 in
  let g = rng ~seed:30 () in
  let c = C.coupled () in
  let h_plain = Stats.Histogram.create () in
  let h_coupled = Stats.Histogram.create () in
  for _ = 1 to reps do
    let x = ref (C.adversarial ~n) in
    for _ = 1 to steps do
      x := C.step g !x
    done;
    Stats.Histogram.add h_plain (C.unfairness !x);
    let x = ref (C.adversarial ~n) and y = ref (C.start ~n) in
    for _ = 1 to steps do
      let x', y' = c.Coupling.Coupled_chain.step g !x !y in
      x := x';
      y := y'
    done;
    Stats.Histogram.add h_coupled (C.unfairness !x)
  done;
  let a = Stats.Histogram.mean h_plain and b = Stats.Histogram.mean h_coupled in
  Alcotest.(check bool)
    (Printf.sprintf "marginal means: %f vs %f" a b)
    true
    (Float.abs (a -. b) < 0.25)

(* ---- Carpool ---- *)

let test_carpool_basics () =
  let t = Edgeorient.Carpool.create ~n:4 in
  Alcotest.(check int) "n" 4 (Edgeorient.Carpool.n t);
  Alcotest.(check (float 1e-9)) "fair at start" 0.
    (Edgeorient.Carpool.max_unfairness t);
  let g = rng () in
  Edgeorient.Carpool.run g t ~days:500;
  Alcotest.(check int) "days counted" 500 (Edgeorient.Carpool.trips t);
  let balances = Array.init 4 (Edgeorient.Carpool.balance t) in
  Alcotest.(check int) "balances sum 0" 0 (Array.fold_left ( + ) 0 balances)

let test_carpool_greedy_stays_fair () =
  let g = rng ~seed:8 () in
  let t = Edgeorient.Carpool.create ~n:16 in
  Edgeorient.Carpool.run g t ~days:20_000;
  Alcotest.(check bool)
    (Printf.sprintf "unfairness %.1f small" (Edgeorient.Carpool.max_unfairness t))
    true
    (Edgeorient.Carpool.max_unfairness t <= 3.)

let test_carpool_of_balances () =
  let t = Edgeorient.Carpool.of_balances [| 4; -4; 0; 0; 0 |] in
  Alcotest.(check (float 1e-9)) "unfairness halved" 2.
    (Edgeorient.Carpool.max_unfairness t)

let qcheck_greedy_invariants =
  QCheck.Test.make ~name:"greedy protocol invariants" ~count:100
    QCheck.(pair small_int (int_range 2 12))
    (fun (seed, n) ->
      let g = rng ~seed () in
      let t = O.create ~n in
      let ok = ref true in
      for _ = 1 to 300 do
        O.greedy_step g t;
        let diffs = O.discrepancies t in
        if Array.fold_left ( + ) 0 diffs <> 0 then ok := false;
        let unf = Array.fold_left (fun a d -> Stdlib.max a (abs d)) 0 diffs in
        if unf <> O.unfairness t then ok := false
      done;
      !ok)

let qcheck_class_chain_preserves_counts =
  QCheck.Test.make ~name:"class chain preserves vertex count and zero sum"
    ~count:100
    QCheck.(pair small_int (int_range 2 10))
    (fun (seed, n) ->
      let g = rng ~seed () in
      let x = ref (C.start ~n) in
      let ok = ref true in
      for _ = 1 to 300 do
        x := C.step g !x;
        let counts = C.counts !x in
        if Array.fold_left ( + ) 0 counts <> n then ok := false;
        let total = ref 0 in
        Array.iteri
          (fun i c -> total := !total + (c * C.discrepancy_of_class !x i))
          counts;
        if !total <> 0 then ok := false
      done;
      !ok)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("create", test_create);
      ("of_discrepancies", test_of_discrepancies);
      ("adversarial", test_adversarial);
      ("orient manual", test_orient_manual);
      ("greedy reduces extremes", test_greedy_reduces_extremes);
      ("greedy invariants over run", test_greedy_run_keeps_invariants);
      ("greedy recovers", test_greedy_recovers);
      ("copy independent", test_copy_independent);
      ("class chain start", test_class_chain_start);
      ("class chain of_discrepancies", test_class_chain_of_discrepancies);
      ("class chain step invariants", test_class_chain_step_invariants);
      ("class chain = greedy in law (Remark 1)",
       test_class_chain_matches_identity_protocol_in_law);
      ("emd", test_emd);
      ("G-tilde detection", test_g_tilde_detection);
      ("coupling coalesces", test_coupled_faithful_and_coalesces);
      ("coupling sticky", test_coupled_sticky);
      ("coupling marginal law", test_coupled_marginal_law);
      ("carpool basics", test_carpool_basics);
      ("carpool greedy stays fair", test_carpool_greedy_stays_fair);
      ("carpool of_balances", test_carpool_of_balances);
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [ qcheck_greedy_invariants; qcheck_class_chain_preserves_counts ]
