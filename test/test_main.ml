let () =
  Alcotest.run "repro"
    [
      ("prng", Test_prng.suite);
      ("stats", Test_stats.suite);
      ("loadvec", Test_loadvec.suite);
      ("markov", Test_markov.suite);
      ("engine", Test_engine.suite);
      ("obs", Test_obs.suite);
      ("coupling", Test_coupling.suite);
      ("core.rules", Test_core_rules.suite);
      ("core.process", Test_core_process.suite);
      ("core.bins", Test_core_bins.suite);
      ("edgeorient", Test_edgeorient.suite);
      ("fluid", Test_fluid.suite);
      ("theory", Test_theory.suite);
      ("extensions", Test_extensions.suite);
      ("related", Test_related.suite);
      ("exact-coupling", Test_exact_coupling.suite);
      ("integration", Test_integration.suite);
      ("properties", Test_properties.suite);
      ("errors", Test_errors.suite);
      ("parallel", Test_parallel.suite);
      ("removal+adap-fluid", Test_fluid_adap.suite);
      ("path-metric", Test_path_metric.suite);
      ("experiment", Test_experiment.suite);
      ("rbb", Test_rbb.suite);
      ("validate", Test_validate.suite);
      ("serve", Test_serve.suite);
    ]
