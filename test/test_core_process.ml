(* Tests for the dynamic processes, their exact transition laws, and the
   paper's coupling lemmas (Lemmas 3.3, 3.4, 4.1; Corollary 4.2;
   Claims 5.1-5.3). *)

module Dp = Core.Dynamic_process
module Sr = Core.Scheduling_rule
module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector

let rng ?(seed = 42) () = Prng.Rng.create ~seed ()

let random_vector g ~n ~m =
  let a = Array.make n 0 in
  for _ = 1 to m do
    let i = Prng.Rng.int g n in
    a.(i) <- a.(i) + 1
  done;
  Lv.of_array a

let all_processes ~n =
  [
    Dp.make Core.Scenario.A (Sr.abku 2) ~n;
    Dp.make Core.Scenario.B (Sr.abku 2) ~n;
    Dp.make Core.Scenario.A (Sr.adap (Core.Adaptive.of_list [ 1; 2; 3 ])) ~n;
    Dp.make Core.Scenario.B (Sr.adap (Core.Adaptive.of_list [ 1; 2; 3 ])) ~n;
  ]

let test_names () =
  Alcotest.(check string) "Id" "Id-ABKU[2]"
    (Dp.name (Dp.make Core.Scenario.A (Sr.abku 2) ~n:4));
  Alcotest.(check string) "Ib" "Ib-ABKU[3]"
    (Dp.name (Dp.make Core.Scenario.B (Sr.abku 3) ~n:4))

let test_step_preserves_total_and_dim () =
  let g = rng () in
  List.iter
    (fun p ->
      let v = Mv.of_load_vector (random_vector g ~n:6 ~m:10) in
      for _ = 1 to 100 do
        Dp.step_in_place p g v
      done;
      Alcotest.(check int) "total" 10 (Mv.total v);
      Alcotest.(check int) "dim" 6 (Mv.dim v);
      Alcotest.(check bool) "normalized" true
        (Lv.is_normalized (Array.copy (Mv.unsafe_loads v))))
    (all_processes ~n:6)

let test_chain_agrees_with_in_place () =
  (* The functional chain and the in-place step use the same randomness
     path, so from identical seeds they produce identical trajectories. *)
  List.iter
    (fun p ->
      let v0 = Lv.of_array [| 5; 3; 1; 0 |] in
      let g1 = rng ~seed:9 () and g2 = rng ~seed:9 () in
      let step = (Dp.chain p).Markov.Chain.step in
      let via_chain = ref v0 in
      for _ = 1 to 50 do
        via_chain := step g1 !via_chain
      done;
      let mv = Mv.of_load_vector v0 in
      for _ = 1 to 50 do
        Dp.step_in_place p g2 mv
      done;
      Alcotest.(check bool) "same trajectory" true
        (Lv.equal !via_chain (Mv.to_load_vector mv)))
    (all_processes ~n:4)

(* The count-vector backend consumes the generator in exactly the order
   of the array backend, so from equal seeds the two trajectories must
   agree state-for-state — not just in law. *)
let qcheck_counts_trace_bit_identical =
  QCheck.Test.make ~name:"count-vector stepper = array stepper (trace)"
    ~count:120
    QCheck.(triple small_int (int_range 2 9) (int_range 2 25))
    (fun (seed, n, m) ->
      List.for_all
        (fun p ->
          let g = rng ~seed () in
          let v0 = random_vector g ~n ~m in
          let g1 = rng ~seed:(seed + 1) () and g2 = rng ~seed:(seed + 1) () in
          let mv = Mv.of_load_vector v0 in
          let cv = Loadvec.Count_vector.of_load_vector v0 in
          let ok = ref true in
          for _ = 1 to 60 do
            let pa = Dp.step_probes p g1 mv in
            let pc = Dp.step_counts_probes p g2 cv in
            if pa <> pc then ok := false;
            if
              not
                (Lv.equal (Mv.to_load_vector mv)
                   (Loadvec.Count_vector.to_load_vector cv))
            then ok := false
          done;
          !ok)
        (all_processes ~n))

(* Same contract through the Engine.Sim adapters (covers reset/observe/
   probe of the count backends). *)
let test_sim_repr_counts_trace () =
  List.iter
    (fun p ->
      let v0 = Lv.of_array [| 4; 3; 2; 1; 0; 0 |] in
      let sim_a = Dp.sim_repr ~repr:Core.Repr.Array_backed p v0 in
      let sim_c = Dp.sim_repr ~repr:Core.Repr.Count_backed p v0 in
      let g1 = rng ~seed:31 () and g2 = rng ~seed:31 () in
      for i = 1 to 40 do
        Engine.Sim.step sim_a g1;
        Engine.Sim.step sim_c g2;
        if Engine.Sim.probe sim_a <> Engine.Sim.probe sim_c then
          Alcotest.failf "%s: probes diverge at step %d" (Dp.name p) i;
        if not (Lv.equal (Engine.Sim.observe sim_a) (Engine.Sim.observe sim_c))
        then Alcotest.failf "%s: states diverge at step %d" (Dp.name p) i
      done;
      (* Reset rewinds both backends to the same state. *)
      Engine.Sim.reset sim_a v0;
      Engine.Sim.reset sim_c v0;
      Alcotest.(check bool) "reset state equal" true
        (Lv.equal (Engine.Sim.observe sim_a) (Engine.Sim.observe sim_c)))
    (all_processes ~n:6)

(* The cutoff table's insertion law equals the closed-form ABKU rank law
   grouped by load class — exactly, not statistically — and stays exact
   under incremental maintenance across random elementary moves. *)
let qcheck_abku_table_law_exact =
  QCheck.Test.make ~name:"Abku_table law = rank_distribution by class"
    ~count:200
    QCheck.(
      quad small_int (int_range 2 9) (int_range 2 25) (int_range 1 4))
    (fun (seed, n, m, d) ->
      let g = rng ~seed () in
      let v0 = random_vector g ~n ~m in
      let cv = Loadvec.Count_vector.of_load_vector v0 in
      let table =
        Sr.Abku_table.create ~d ~n
          ~max_level:(Loadvec.Count_vector.max_load cv)
          ~count:(Loadvec.Count_vector.count cv)
      in
      let p = Dp.make Core.Scenario.A (Sr.abku d) ~n in
      let agree () =
        let rank_law =
          Sr.rank_distribution (Sr.abku d)
            ~loads:(Lv.to_array (Loadvec.Count_vector.to_load_vector cv))
        in
        let level_law = Sr.Abku_table.level_distribution table in
        (* Fold the rank law into per-level masses. *)
        let loads = Lv.to_array (Loadvec.Count_vector.to_load_vector cv) in
        let by_level = Array.make (Array.length level_law) 0. in
        Array.iteri
          (fun j pr ->
            if loads.(j) < Array.length by_level then
              by_level.(loads.(j)) <- by_level.(loads.(j)) +. pr)
          rank_law;
        let ok = ref true in
        Array.iteri
          (fun l pr ->
            if Float.abs (pr -. by_level.(l)) > 1e-12 then ok := false)
          level_law;
        !ok
      in
      let ok = ref (agree ()) in
      (* Drive the state through real steps, maintaining the table
         through its on_loss/on_gain hooks, and recheck exactness. *)
      for _ = 1 to 15 do
        let u = Prng.Rng.float g in
        let level = Core.Scenario.remove_level (Dp.scenario p) cv ~u in
        Loadvec.Count_vector.shift_down cv level;
        Sr.Abku_table.on_loss table level;
        let dest = Sr.Abku_table.draw_level table g in
        Loadvec.Count_vector.shift_up cv dest;
        Sr.Abku_table.on_gain table (dest + 1);
        if not (agree ()) then ok := false
      done;
      !ok)

let test_exact_transitions_sum_to_one () =
  let g = rng () in
  List.iter
    (fun p ->
      for _ = 1 to 20 do
        let v = random_vector g ~n:4 ~m:6 in
        let ts = Dp.exact_transitions p v in
        let total = List.fold_left (fun a (_, pr) -> a +. pr) 0. ts in
        if Float.abs (total -. 1.) > 1e-9 then
          Alcotest.failf "%s: transitions sum to %f" (Dp.name p) total;
        List.iter
          (fun (s, pr) ->
            if pr < 0. then Alcotest.fail "negative probability";
            Alcotest.(check int) "successor total" 6 (Lv.total s))
          ts
      done)
    (all_processes ~n:4)

let test_exact_matches_simulation () =
  (* Empirical one-step frequencies match the exact law. *)
  let g = rng () in
  List.iter
    (fun p ->
      let v = Lv.of_array [| 3; 2; 1; 0 |] in
      let ts = Dp.exact_transitions p v in
      let merged = Hashtbl.create 16 in
      List.iter
        (fun (s, pr) ->
          Hashtbl.replace merged s
            (pr +. Option.value ~default:0. (Hashtbl.find_opt merged s)))
        ts;
      let counts = Hashtbl.create 16 in
      let reps = 30_000 in
      let chain = Dp.chain p in
      for _ = 1 to reps do
        let s = chain.Markov.Chain.step g v in
        Hashtbl.replace counts s
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts s))
      done;
      Hashtbl.iter
        (fun s pr ->
          let c = Option.value ~default:0 (Hashtbl.find_opt counts s) in
          let frac = float_of_int c /. float_of_int reps in
          if Float.abs (frac -. pr) > 0.02 then
            Alcotest.failf "%s: state freq %f vs exact %f" (Dp.name p) frac pr)
        merged;
      (* No simulated state outside the exact support. *)
      Hashtbl.iter
        (fun s _ ->
          if not (Hashtbl.mem merged s) then
            Alcotest.failf "%s: simulated state outside exact support" (Dp.name p))
        counts)
    (all_processes ~n:4)

let test_exact_chain_is_stochastic () =
  let p = Dp.make Core.Scenario.A (Sr.abku 2) ~n:3 in
  let states = Markov.Partition_space.enumerate ~n:3 ~m:4 in
  let chain = Markov.Exact.build ~states ~transitions:(Dp.exact_transitions p) in
  Alcotest.(check bool) "stochastic" true
    (Markov.Matrix.is_stochastic (Markov.Exact.matrix chain))

(* Lemma 3.3: shared-probe insertion never increases the L1 distance. *)
let qcheck_lemma_3_3 =
  QCheck.Test.make ~name:"Lemma 3.3: right-oriented insertion contracts" ~count:400
    QCheck.(
      quad small_int (int_range 2 8) (int_range 1 20) (int_range 1 3))
    (fun (seed, n, m, d) ->
      let g = rng ~seed () in
      let v = random_vector g ~n ~m in
      let u = random_vector g ~n ~m in
      let rule =
        if d = 3 then Sr.adap (Core.Adaptive.of_list [ 1; 2; 2; 3 ])
        else Sr.abku d
      in
      let probe = Core.Probe.create g ~n in
      let rv, _ = Sr.choose_rank rule ~loads:(Lv.to_array v) ~probe in
      let ru, _ = Sr.choose_rank rule ~loads:(Lv.to_array u) ~probe in
      let v' = Lv.oplus v rv and u' = Lv.oplus u ru in
      Lv.l1_distance v' u' <= Lv.l1_distance v u)

(* Lemma 3.4 / Definition 3.4: D is right-oriented with Phi = identity.
   Pointwise check on random probe sequences: if D(v,b) = i < D(u,b)
   then u_i > v_i, and if D(v,b) > i = D(u,b) then v_i < u_i.
   (0-based translation of the paper's conditions.) *)
let qcheck_lemma_3_4_right_oriented =
  QCheck.Test.make ~name:"Lemma 3.4: D is right-oriented" ~count:400
    QCheck.(quad small_int (int_range 2 8) (int_range 1 20) (int_range 1 3))
    (fun (seed, n, m, d) ->
      let g = rng ~seed () in
      let v = random_vector g ~n ~m in
      let u = random_vector g ~n ~m in
      let rule =
        if d = 3 then Sr.adap (Core.Adaptive.of_list [ 1; 1; 2; 3 ])
        else Sr.abku d
      in
      let probe = Core.Probe.create g ~n in
      let av = Lv.to_array v and au = Lv.to_array u in
      let rv, _ = Sr.choose_rank rule ~loads:av ~probe in
      let ru, _ = Sr.choose_rank rule ~loads:au ~probe in
      (if rv < ru then au.(rv) > av.(rv) else true)
      && if rv > ru then av.(ru) > au.(ru) else true)

let test_right_oriented_api () =
  let g = rng ~seed:55 () in
  List.iter
    (fun rule ->
      Alcotest.(check bool)
        (Sr.name rule ^ " passes spot check")
        true
        (Core.Right_oriented.spot_check rule g ~n:8 ~m:20 ~trials:2_000))
    [
      Sr.abku 1;
      Sr.abku 2;
      Sr.abku 4;
      Sr.adap (Core.Adaptive.of_list [ 1; 2; 3 ]);
      Sr.adap (Core.Adaptive.linear ());
      Sr.adap (Core.Adaptive.doubling ());
    ]

let test_right_oriented_pointwise () =
  let g = rng () in
  let v = Lv.of_array [| 3; 2; 1; 0 |] and u = Lv.of_array [| 2; 2; 1; 1 |] in
  for _ = 1 to 200 do
    let probe = Core.Probe.create g ~n:4 in
    Alcotest.(check bool) "definition holds" true
      (Core.Right_oriented.holds_pointwise (Sr.abku 2) ~v ~u ~probe);
    let probe = Core.Probe.create g ~n:4 in
    Alcotest.(check bool) "contraction holds" true
      (Core.Right_oriented.contraction_holds (Sr.abku 2) ~v ~u ~probe)
  done;
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Right_oriented.holds_pointwise: dimension mismatch")
    (fun () ->
      ignore
        (Core.Right_oriented.holds_pointwise (Sr.abku 1) ~v
           ~u:(Lv.of_array [| 1 |])
           ~probe:(Core.Probe.create g ~n:4)))

let adjacent_pair_ok (v, u) =
  match Core.Coupled.find_adjacent_offsets v u with
  | Some (l, d) -> l < d && Lv.delta v u = 1
  | None -> false

let test_adjacent_pair_generator () =
  let g = rng () in
  for _ = 1 to 200 do
    let pair = Core.Coupled.adjacent_pair g ~n:5 ~m:8 in
    if not (adjacent_pair_ok pair) then Alcotest.fail "bad adjacent pair"
  done

let test_find_adjacent_offsets () =
  let u = Lv.of_array [| 3; 2; 1 |] in
  let v = Lv.of_array [| 4; 2; 0 |] in
  Alcotest.(check (option (pair int int))) "offsets" (Some (0, 2))
    (Core.Coupled.find_adjacent_offsets v u);
  Alcotest.(check (option (pair int int))) "wrong orientation" None
    (Core.Coupled.find_adjacent_offsets u v);
  Alcotest.(check (option (pair int int))) "same state" None
    (Core.Coupled.find_adjacent_offsets u u)

(* Lemma 4.1: the scenario-A coupling never increases Delta on adjacent
   pairs. *)
let qcheck_lemma_4_1 =
  QCheck.Test.make ~name:"Lemma 4.1: scenario-A coupling contracts" ~count:400
    QCheck.(triple small_int (int_range 2 7) (int_range 2 15))
    (fun (seed, n, m) ->
      let g = rng ~seed () in
      let v, u = Core.Coupled.adjacent_pair g ~n ~m in
      let p = Dp.make Core.Scenario.A (Sr.abku 2) ~n in
      let v', u' = Core.Coupled.paper_step p g v u in
      Lv.delta v' u' <= 1)

(* Claims 5.1-5.2: the scenario-B coupling keeps E[Delta'] <= 1 but may
   reach 2; here we check the support: Delta' is in {0, 1, 2}. *)
let qcheck_scenario_b_delta_support =
  QCheck.Test.make ~name:"Claims 5.1-5.2: scenario-B Delta' in {0,1,2}" ~count:400
    QCheck.(triple small_int (int_range 2 7) (int_range 2 15))
    (fun (seed, n, m) ->
      let g = rng ~seed () in
      let v, u = Core.Coupled.adjacent_pair g ~n ~m in
      let p = Dp.make Core.Scenario.B (Sr.abku 2) ~n in
      let v', u' = Core.Coupled.paper_step p g v u in
      let d = Lv.delta v' u' in
      d >= 0 && d <= 2)

(* Corollary 4.2: E[Delta'] <= 1 - 1/m for the scenario-A coupling.
   Statistical check with margin. *)
let test_corollary_4_2 () =
  let n = 5 and m = 10 in
  let p = Dp.make Core.Scenario.A (Sr.abku 2) ~n in
  let c = Core.Coupled.paper_coupling p in
  let rngm = rng ~seed:123 () in
  let beta, _alpha =
    Coupling.Path_coupling.beta_estimate ~reps:40_000 ~rng:rngm c
      ~pair:(fun g -> Core.Coupled.adjacent_pair g ~n ~m)
  in
  let bound = 1. -. (1. /. float_of_int m) in
  Alcotest.(check bool)
    (Printf.sprintf "beta %.4f <= %.4f (+margin)" beta bound)
    true
    (beta <= bound +. 0.01)

(* Claim analysis for scenario B: E[Delta'] <= 1 and
   Pr[Delta' <> 1] >= 1/(2n) (the paper shows >= 1/s >= 1/n up to
   constants; we check a relaxed version). *)
let test_claim_5_3_ingredients () =
  let n = 5 and m = 10 in
  let p = Dp.make Core.Scenario.B (Sr.abku 2) ~n in
  let c = Core.Coupled.paper_coupling p in
  let rngm = rng ~seed:321 () in
  let beta, alpha =
    Coupling.Path_coupling.beta_estimate ~reps:40_000 ~rng:rngm c
      ~pair:(fun g -> Core.Coupled.adjacent_pair g ~n ~m)
  in
  Alcotest.(check bool)
    (Printf.sprintf "E[Delta'] = %.4f <= 1 (+margin)" beta)
    true (beta <= 1.01);
  Alcotest.(check bool)
    (Printf.sprintf "Pr[Delta' <> 1] = %.4f >= 1/(2n)" alpha)
    true
    (alpha >= 1. /. (2. *. float_of_int n))

(* The paper coupling is a faithful coupling: each marginal follows the
   chain law.  Check the first marginal's one-step distribution from a
   fixed pair against exact_transitions. *)
let test_paper_coupling_faithful_marginals () =
  let n = 4 in
  List.iter
    (fun sc ->
      let p = Dp.make sc (Sr.abku 2) ~n in
      let u = Lv.of_array [| 3; 2; 1; 0 |] in
      let v = Lv.oplus (Lv.ominus u 2) 0 in
      (* v = u + e_lambda - e_delta for some offsets *)
      if Lv.delta v u = 1 then begin
        let exact = Hashtbl.create 16 in
        List.iter
          (fun (s, pr) ->
            Hashtbl.replace exact s
              (pr +. Option.value ~default:0. (Hashtbl.find_opt exact s)))
          (Dp.exact_transitions p v);
        let g = rng ~seed:7 () in
        let counts = Hashtbl.create 16 in
        let reps = 40_000 in
        for _ = 1 to reps do
          let v', _ = Core.Coupled.paper_step p g v u in
          Hashtbl.replace counts v'
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts v'))
        done;
        Hashtbl.iter
          (fun s pr ->
            let c = Option.value ~default:0 (Hashtbl.find_opt counts s) in
            let frac = float_of_int c /. float_of_int reps in
            if Float.abs (frac -. pr) > 0.02 then
              Alcotest.failf "scenario %s: marginal freq %f vs exact %f"
                (Core.Scenario.name sc) frac pr)
          exact
      end)
    [ Core.Scenario.A; Core.Scenario.B ]

let test_paper_step_invalid () =
  let p = Dp.make Core.Scenario.A (Sr.abku 2) ~n:3 in
  let g = rng () in
  let v = Lv.of_array [| 4; 0; 0 |] and u = Lv.of_array [| 2; 1; 1 |] in
  Alcotest.check_raises "not adjacent"
    (Invalid_argument "Coupled.paper_step: states not adjacent") (fun () ->
      ignore (Core.Coupled.paper_step p g v u))

(* Monotone coupling: coalescence of the two extremal states and
   preservation of totals. *)
let test_monotone_coupling_coalesces () =
  List.iter
    (fun p ->
      let n = 6 and m = 6 in
      let c = Core.Coupled.monotone p in
      let g = rng ~seed:99 () in
      let x = Mv.of_load_vector (Lv.all_in_one ~n ~m) in
      let y = Mv.of_load_vector (Lv.uniform ~n ~m) in
      match Coupling.Coalescence.time c g x y ~limit:100_000 with
      | Some t -> Alcotest.(check bool) "positive" true (t > 0)
      | None -> Alcotest.failf "%s did not coalesce" (Dp.name p))
    (all_processes ~n:6)

let test_monotone_coupling_distance_never_negative () =
  let p = Dp.make Core.Scenario.B (Sr.abku 2) ~n:5 in
  let c = Core.Coupled.monotone p in
  let g = rng ~seed:17 () in
  let x = Mv.of_load_vector (Lv.all_in_one ~n:5 ~m:9) in
  let y = Mv.of_load_vector (Lv.uniform ~n:5 ~m:9) in
  let trace = Coupling.Coalescence.trace_distance c g x y ~every:1 ~limit:500 in
  List.iter (fun (_, d) -> if d < 0 then Alcotest.fail "negative distance") trace

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("process names", test_names);
      ("step preserves total/dim", test_step_preserves_total_and_dim);
      ("chain = in-place step", test_chain_agrees_with_in_place);
      ("sim_repr counts trace", test_sim_repr_counts_trace);
      ("exact transitions sum to 1", test_exact_transitions_sum_to_one);
      ("exact law matches simulation", test_exact_matches_simulation);
      ("exact chain stochastic", test_exact_chain_is_stochastic);
      ("right-oriented spot checks", test_right_oriented_api);
      ("right-oriented pointwise", test_right_oriented_pointwise);
      ("adjacent pair generator", test_adjacent_pair_generator);
      ("find_adjacent_offsets", test_find_adjacent_offsets);
      ("Corollary 4.2 (beta <= 1 - 1/m)", test_corollary_4_2);
      ("Claim 5.3 ingredients", test_claim_5_3_ingredients);
      ("paper coupling faithful marginals", test_paper_coupling_faithful_marginals);
      ("paper step invalid", test_paper_step_invalid);
      ("monotone coupling coalesces", test_monotone_coupling_coalesces);
      ("monotone distance non-negative", test_monotone_coupling_distance_never_negative);
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        qcheck_counts_trace_bit_identical;
        qcheck_abku_table_law_exact;
        qcheck_lemma_3_3;
        qcheck_lemma_3_4_right_oriented;
        qcheck_lemma_4_1;
        qcheck_scenario_b_delta_support;
      ]
