(* Tracing/telemetry subsystem: clock monotonicity, histogram
   bucketing, the disabled-path no-op contract, the Perfetto trace-event
   export (validated by parsing it back), and the determinism of the
   multi-domain trace merge. *)

module Json = Experiment.Json

(* Every test runs against the global Obs state; wrap so a failing test
   cannot leave tracing enabled for the rest of the binary. *)
let isolated f () =
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.disable ();
      Obs.reset ())
    f

let test_clock () =
  let t0 = Obs.Clock.now_ns () in
  let x = ref 0 in
  for i = 1 to 10_000 do
    x := !x + i
  done;
  ignore (Sys.opaque_identity !x);
  let t1 = Obs.Clock.now_ns () in
  Alcotest.(check bool) "clock advances" true (Int64.compare t1 t0 >= 0);
  Alcotest.(check bool)
    "ns_since clamps to zero" true
    (Int64.compare (Obs.Clock.ns_since (Int64.add t1 1_000_000_000L)) 0L = 0);
  Alcotest.(check bool)
    "seconds_since is non-negative" true
    (Obs.Clock.seconds_since t0 >= 0.)

let test_hist_buckets () =
  Alcotest.(check int) "<=0 goes to bucket 0" 0 (Obs.Hist.bucket_of 0);
  Alcotest.(check int) "negative goes to bucket 0" 0 (Obs.Hist.bucket_of (-5));
  Alcotest.(check int) "1 is the first 1-bit value" 1 (Obs.Hist.bucket_of 1);
  Alcotest.(check int) "2 opens bucket 2" 2 (Obs.Hist.bucket_of 2);
  Alcotest.(check int) "3 closes bucket 2" 2 (Obs.Hist.bucket_of 3);
  Alcotest.(check int) "4 opens bucket 3" 3 (Obs.Hist.bucket_of 4);
  Alcotest.(check int) "1023 is a 10-bit value" 10 (Obs.Hist.bucket_of 1023);
  Alcotest.(check int) "1024 is an 11-bit value" 11 (Obs.Hist.bucket_of 1024);
  let h = Obs.Hist.create () in
  List.iter (Obs.Hist.observe h) [ 1; 2; 3; 100; 0 ];
  let s = Obs.Hist.snapshot h in
  Alcotest.(check int) "count" 5 s.Obs.Hist.count;
  Alcotest.(check int) "sum" 106 s.Obs.Hist.sum;
  Alcotest.(check int) "max" 100 s.Obs.Hist.max;
  Alcotest.(check (float 1e-9)) "mean" 21.2 (Obs.Hist.mean s);
  Alcotest.(check (list (triple int int int)))
    "non-empty buckets in value order"
    [ (0, 0, 1); (1, 1, 1); (2, 3, 2); (64, 127, 1) ]
    s.Obs.Hist.buckets;
  Obs.Hist.reset h;
  Alcotest.(check int) "reset clears" 0 (Obs.Hist.snapshot h).Obs.Hist.count

(* {2 Histogram quantile / merge laws} *)

let snapshot_of values =
  let h = Obs.Hist.create () in
  List.iter (Obs.Hist.observe h) values;
  Obs.Hist.snapshot h

let test_hist_quantiles () =
  Alcotest.(check bool)
    "empty quantile is nan" true
    (Float.is_nan (Obs.Hist.quantile Obs.Hist.empty 0.5));
  Alcotest.(check (list string))
    "percentile labels"
    [ "p50"; "p90"; "p99"; "p999" ]
    (List.map fst (Obs.Hist.percentiles Obs.Hist.empty));
  let s = snapshot_of (List.init 100 (fun i -> i + 1)) in
  (* 1..100: rank 50 is in bucket [32, 63], rank >= 90 in the top
     bucket, whose upper edge is pulled in to the recorded max. *)
  let q50 = Obs.Hist.quantile s 0.5 in
  Alcotest.(check bool) "p50 lands in its bucket" true
    (q50 >= 32. && q50 <= 63.);
  let q90 = Obs.Hist.quantile s 0.9 in
  Alcotest.(check bool) "p90 capped by the recorded max" true
    (q90 >= 64. && q90 <= 100.);
  Alcotest.(check (float 1e-9)) "q=1 is the max" 100. (Obs.Hist.quantile s 1.);
  Alcotest.(check (float 1e-9)) "q clamps above 1" 100.
    (Obs.Hist.quantile s 2.);
  let one = snapshot_of [ 7 ] in
  Alcotest.(check bool) "single observation stays in its bucket" true
    (let q = Obs.Hist.quantile one 0.5 in
     q >= 4. && q <= 7.)

let values_gen = QCheck.(list_of_size (Gen.int_range 0 60) (int_range 0 5000))

let qcheck_merge_matches_concatenation =
  QCheck.Test.make ~name:"Hist.merge = snapshot of the concatenated stream"
    ~count:300
    QCheck.(pair values_gen values_gen)
    (fun (xs, ys) ->
      Obs.Hist.merge (snapshot_of xs) (snapshot_of ys) = snapshot_of (xs @ ys))

let qcheck_merge_assoc_comm =
  QCheck.Test.make
    ~name:"Hist.merge is associative/commutative with empty identity"
    ~count:300
    QCheck.(triple values_gen values_gen values_gen)
    (fun (xs, ys, zs) ->
      let a = snapshot_of xs and b = snapshot_of ys and c = snapshot_of zs in
      Obs.Hist.merge a (Obs.Hist.merge b c)
      = Obs.Hist.merge (Obs.Hist.merge a b) c
      && Obs.Hist.merge a b = Obs.Hist.merge b a
      && Obs.Hist.merge a Obs.Hist.empty = a
      && Obs.Hist.merge Obs.Hist.empty a = a)

let qcheck_quantile_monotone =
  QCheck.Test.make ~name:"Hist.quantile is monotone in q" ~count:300
    QCheck.(triple values_gen (float_range 0. 1.) (float_range 0. 1.))
    (fun (xs, q1, q2) ->
      QCheck.assume (xs <> []);
      let s = snapshot_of xs in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Obs.Hist.quantile s lo <= Obs.Hist.quantile s hi)

(* The accuracy contract: the estimate lies inside the bucket holding
   the true order statistic of rank ceil(q * count), i.e. it is exact
   to within that bucket's width. *)
let qcheck_quantile_bucket_exact =
  QCheck.Test.make
    ~name:"Hist.quantile lands in the true order statistic's bucket"
    ~count:300
    QCheck.(pair values_gen (float_range 0. 1.))
    (fun (xs, q) ->
      QCheck.assume (xs <> []);
      let s = snapshot_of xs in
      let est = Obs.Hist.quantile s q in
      let sorted = List.sort compare xs in
      let n = List.length xs in
      let rank =
        min n (max 1 (int_of_float (ceil (q *. float_of_int n))))
      in
      let v = List.nth sorted (rank - 1) in
      match
        List.find_opt (fun (lo, hi, _) -> lo <= v && v <= hi)
          s.Obs.Hist.buckets
      with
      | None -> false
      | Some (lo, hi, _) ->
          est >= float_of_int lo && est <= float_of_int hi)

let test_disabled_no_op () =
  Alcotest.(check bool) "disabled by default" false (Obs.enabled ());
  let c = Obs.Counter.make "test.disabled_counter" in
  let h = Obs.Histogram.make "test.disabled_hist" in
  Obs.Counter.add c 5;
  Obs.Histogram.observe h 42;
  let sp = Obs.begin_span "test.disabled" ~args:[ ("k", Obs.Int 1) ] in
  Obs.end_span sp;
  Obs.with_span "test.disabled2" (fun () -> ());
  Obs.instant "test.disabled3";
  Obs.counter_sample "test.disabled4" 9;
  Alcotest.(check int) "counter untouched" 0 (Obs.Counter.value c);
  Alcotest.(check int)
    "histogram untouched" 0
    (Obs.Histogram.snapshot h).Obs.Hist.count;
  Alcotest.(check int) "no events buffered" 0 (List.length (Obs.events ()));
  Alcotest.(check bool)
    "null_span matches a disabled begin_span" true
    (sp = Obs.null_span)

let test_counters_and_histograms_view () =
  Obs.enable ();
  let c = Obs.Counter.make "test.view_counter" in
  let h = Obs.Histogram.make "test.view_hist" in
  let silent = Obs.Counter.make "test.view_silent" in
  ignore silent;
  Obs.Counter.incr c;
  Obs.Counter.add c 2;
  Obs.Histogram.observe h 7;
  Alcotest.(check int) "counter accumulates" 3 (Obs.Counter.value c);
  Alcotest.(check bool)
    "view lists the active counter" true
    (List.mem_assoc "test.view_counter" (Obs.counters ()));
  Alcotest.(check bool)
    "view omits silent instruments" false
    (List.mem_assoc "test.view_silent" (Obs.counters ()));
  Alcotest.(check bool)
    "view lists the active histogram" true
    (List.mem_assoc "test.view_hist" (Obs.histograms ()));
  Obs.reset ();
  Alcotest.(check int) "reset zeroes counters" 0 (Obs.Counter.value c);
  Alcotest.(check bool)
    "reset empties the views" true
    (not (List.mem_assoc "test.view_counter" (Obs.counters ())))

let test_nested_span_ordering () =
  Obs.enable ();
  Obs.with_span "outer" (fun () ->
      Obs.with_span "inner" (fun () -> ());
      Obs.instant "marker");
  let evs = Obs.events () in
  let names = List.map (fun (e : Obs.event) -> e.Obs.name) evs in
  (* The outer span begins first, so its seq is lowest even though it is
     recorded (ends) last. *)
  Alcotest.(check (list string))
    "begin order, not end order"
    [ "outer"; "inner"; "marker" ]
    names;
  let seqs = List.map (fun (e : Obs.event) -> e.Obs.seq) evs in
  Alcotest.(check (list int)) "sequential seqs" [ 0; 1; 2 ] seqs;
  let outer = List.hd evs in
  let inner = List.nth evs 1 in
  Alcotest.(check bool)
    "outer duration covers inner" true
    (Int64.compare outer.Obs.dur_ns inner.Obs.dur_ns >= 0)

let member_exn name doc =
  match Json.member name doc with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S" name

let test_trace_json_round_trip () =
  Obs.enable ();
  Obs.with_span "alpha"
    ~args:[ ("n", Obs.Int 64); ("note", Obs.Str "quote\"me") ]
    (fun () -> ());
  let sp = Obs.begin_span "beta" in
  Obs.end_span ~args:[ ("tv", Obs.Float 0.125) ] sp;
  Obs.instant "gamma";
  Obs.counter_sample "load" 17;
  let doc =
    match Json.of_string (Obs.trace_json ()) with
    | Ok doc -> doc
    | Error msg -> Alcotest.failf "trace does not parse: %s" msg
  in
  Alcotest.(check string)
    "display unit" "ms"
    (match member_exn "displayTimeUnit" doc with
    | Json.String s -> s
    | _ -> "?");
  let events =
    match member_exn "traceEvents" doc with
    | Json.List evs -> evs
    | _ -> Alcotest.fail "traceEvents is not an array"
  in
  Alcotest.(check int) "one event per record" 4 (List.length events);
  let number = function
    | Json.Int i -> float_of_int i
    | Json.Float x -> x
    | _ -> Alcotest.fail "expected a number"
  in
  List.iter
    (fun ev ->
      (match member_exn "ph" ev with
      | Json.String ("X" | "i" | "C") -> ()
      | _ -> Alcotest.fail "unexpected phase");
      Alcotest.(check bool) "ts >= 0" true (number (member_exn "ts" ev) >= 0.);
      Alcotest.(check int) "pid is 1" 1
        (match member_exn "pid" ev with Json.Int i -> i | _ -> -1);
      match member_exn "tid" ev with
      | Json.Int _ -> ()
      | _ -> Alcotest.fail "tid is not an integer")
    events;
  let find name =
    List.find
      (fun ev ->
        match Json.member "name" ev with
        | Some (Json.String s) -> s = name
        | _ -> false)
      events
  in
  let alpha = find "alpha" in
  Alcotest.(check bool) "complete events carry dur" true
    (Json.member "dur" alpha <> None);
  (match Json.member "n" (member_exn "args" alpha) with
  | Some (Json.Int 64) -> ()
  | _ -> Alcotest.fail "begin-side int arg lost");
  (match Json.member "note" (member_exn "args" alpha) with
  | Some (Json.String "quote\"me") -> ()
  | _ -> Alcotest.fail "string arg not escaped/recovered");
  (match Json.member "tv" (member_exn "args" (find "beta")) with
  | Some (Json.Float tv) -> Alcotest.(check (float 1e-12)) "end-side float arg" 0.125 tv
  | _ -> Alcotest.fail "end-side arg lost");
  (match member_exn "ph" (find "gamma") with
  | Json.String "i" -> ()
  | _ -> Alcotest.fail "instant phase");
  match (member_exn "ph" (find "load"), Json.member "value" (member_exn "args" (find "load"))) with
  | Json.String "C", Some (Json.Int 17) -> ()
  | _ -> Alcotest.fail "counter sample phase/value"

(* The satellite contract: the same fan-out traced at different domain
   counts yields the same trace once timestamps are stripped, because
   events merge on the deterministic (track, seq) key. *)
let traced_fanout ~domains =
  Obs.reset ();
  Obs.enable ();
  let rng = Prng.Rng.create ~seed:0xD15C () in
  let r =
    Engine.Runner.run ~domains ~rng ~reps:6 (fun g m ->
        Obs.with_span "work" (fun () ->
            Engine.Metrics.add_step m;
            if Prng.Rng.bool g then Some 1 else None))
  in
  ignore r.Engine.Runner.observations;
  let evs = Obs.events () in
  let stripped =
    List.map
      (fun (e : Obs.event) ->
        (e.Obs.name, e.Obs.ph, e.Obs.track, e.Obs.seq, e.Obs.args))
      evs
  in
  let hist = Obs.Histogram.snapshot (Obs.Histogram.make "runner.first_hit_steps") in
  Obs.disable ();
  (stripped, hist)

let test_domain_count_invariance () =
  let one, hist1 = traced_fanout ~domains:1 in
  let four, hist4 = traced_fanout ~domains:4 in
  Alcotest.(check int)
    "same event count" (List.length one) (List.length four);
  Alcotest.(check bool)
    "identical after timestamp stripping" true (one = four);
  Alcotest.(check int)
    "telemetry histograms agree" hist1.Obs.Hist.count hist4.Obs.Hist.count;
  Alcotest.(check bool) "trace is non-trivial" true (List.length one >= 12)

let test_write_trace_file () =
  Obs.enable ();
  Obs.with_span "filed" (fun () -> ());
  let path = Filename.temp_file "obs_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.write_trace ~path;
      let ic = open_in_bin path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Json.of_string text with
      | Ok doc ->
          Alcotest.(check bool)
            "file holds a traceEvents object" true
            (Json.member "traceEvents" doc <> None)
      | Error msg -> Alcotest.failf "written trace does not parse: %s" msg)

let test_task_tracks () =
  Obs.enable ();
  let base = Obs.task_base ~count:3 in
  let base' = Obs.task_base ~count:2 in
  Alcotest.(check int) "bases do not overlap" (base + 3) base';
  Obs.in_task (base + 1) (fun () -> Obs.instant "tasked");
  Obs.instant "untasked";
  let evs = Obs.events () in
  let track_of name =
    (List.find (fun (e : Obs.event) -> e.Obs.name = name) evs).Obs.track
  in
  Alcotest.(check int) "tasked event on its track" (base + 1)
    (track_of "tasked");
  Alcotest.(check int) "untasked event back on track 0" 0
    (track_of "untasked")

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick (isolated f))
    [
      ("monotonic clock", test_clock);
      ("histogram bucketing", test_hist_buckets);
      ("histogram quantiles", test_hist_quantiles);
      ("disabled path records nothing", test_disabled_no_op);
      ("counter/histogram views", test_counters_and_histograms_view);
      ("nested span ordering", test_nested_span_ordering);
      ("trace JSON round-trip", test_trace_json_round_trip);
      ("domain-count invariance", test_domain_count_invariance);
      ("write_trace file", test_write_trace_file);
      ("task track reservation", test_task_tracks);
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        qcheck_merge_matches_concatenation;
        qcheck_merge_assoc_comm;
        qcheck_quantile_monotone;
        qcheck_quantile_bucket_exact;
      ]
