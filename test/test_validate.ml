(* lib/validate: state spaces, estimators, the sequential tester, the
   new exact one-step laws, and the corrupted-stepper contract — a
   deliberately wrong stepper must FAIL conformance, the real one must
   PASS, across several seeds. *)

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector

let check_float = Alcotest.(check (float 1e-9))

let sum_probs law = List.fold_left (fun acc (_, p) -> acc +. p) 0. law

(* --- exact one-step laws (Open_process, Relocation) ------------------ *)

let test_open_exact_transitions () =
  let t =
    Core.Open_process.make ~insert_probability:0.5 ~capacity:2
      (Core.Scheduling_rule.abku 1) ~n:2
  in
  (* Empty state: insertion w.p. 1/2, removal is a self-loop. *)
  let empty = Lv.of_array [| 0; 0 |] in
  let law = Core.Open_process.exact_transitions t empty in
  check_float "empty law sums to 1" 1. (sum_probs law);
  let mass_on s =
    List.fold_left
      (fun acc (s', p) -> if s' = s then acc +. p else acc)
      0. law
  in
  check_float "empty self-loop mass" 0.5 (mass_on empty);
  check_float "insertion mass" 0.5 (mass_on (Lv.of_array [| 1; 0 |]));
  (* At capacity the insertion is the self-loop instead. *)
  let full = Lv.of_array [| 1; 1 |] in
  let law_full = Core.Open_process.exact_transitions t full in
  check_float "full law sums to 1" 1. (sum_probs law_full);
  check_float "removal mass at capacity" 0.5
    (List.fold_left
       (fun acc (s', p) -> if s' = Lv.of_array [| 1; 0 |] then acc +. p else acc)
       0. law_full);
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Open_process.exact_transitions: dimension mismatch")
    (fun () -> ignore (Core.Open_process.exact_transitions t (Lv.of_array [| 0; 0; 0 |])));
  Alcotest.check_raises "state above capacity"
    (Invalid_argument "Open_process.exact_transitions: state above capacity")
    (fun () -> ignore (Core.Open_process.exact_transitions t (Lv.of_array [| 2; 1 |])))

let test_relocation_exact_transitions () =
  (* relocations = 0, ABKU[1] on two bins: remove the only ball, then
     insert uniformly — the two successors are fully determined. *)
  let t0 =
    Core.Relocation.make Core.Scenario.A (Core.Scheduling_rule.abku 1)
      ~relocations:0 ~n:2
  in
  let law = Core.Relocation.exact_transitions t0 [| 1; 0 |] in
  check_float "law sums to 1" 1. (sum_probs law);
  let mass_on s =
    List.fold_left (fun acc (s', p) -> if s' = s then acc +. p else acc) 0. law
  in
  check_float "ball back in bin 0" 0.5 (mass_on [| 1; 0 |]);
  check_float "ball moved to bin 1" 0.5 (mass_on [| 0; 1 |]);
  (* A configuration with a real relocation stage still sums to 1, and
     its reachable space builds into a valid chain (row normalization is
     checked by Exact.build to 1e-9). *)
  let t1 =
    Core.Relocation.make Core.Scenario.B (Core.Scheduling_rule.abku 2)
      ~relocations:1 ~n:3
  in
  check_float "relocation law sums to 1" 1.
    (sum_probs (Core.Relocation.exact_transitions t1 [| 3; 0; 0 |]));
  let chain =
    Markov.Exact_builder.build
      (Markov.Exact_builder.reachable ~root:[| 3; 0; 0 |])
      ~transitions:(Core.Relocation.exact_transitions t1)
  in
  Alcotest.(check bool) "chain has states" true (Markov.Exact.size chain > 0);
  Alcotest.check_raises "ADAP rejected"
    (Invalid_argument
       "Relocation.exact_transitions: ADAP probe tuples are unbounded")
    (fun () ->
      let t =
        Core.Relocation.make Core.Scenario.A
          (Core.Scheduling_rule.adap (Core.Adaptive.constant 1))
          ~relocations:0 ~n:2
      in
      ignore (Core.Relocation.exact_transitions t [| 1; 0 |]));
  Alcotest.check_raises "no balls rejected"
    (Invalid_argument "Relocation.exact_transitions: no balls")
    (fun () -> ignore (Core.Relocation.exact_transitions t0 [| 0; 0 |]))

(* --- Space ----------------------------------------------------------- *)

let test_space () =
  let space = Validate.Space.make [| 10; 20; 30 |] in
  Alcotest.(check int) "size" 3 (Validate.Space.size space);
  Alcotest.(check (option int)) "find" (Some 1)
    (Validate.Space.find_opt space 20);
  Alcotest.(check (option int)) "missing" None
    (Validate.Space.find_opt space 99);
  let law = Validate.Space.dense_law space [ (10, 0.25); (30, 0.75) ] in
  check_float "dense law cell" 0.75 law.(2);
  Alcotest.check_raises "unknown successor"
    (Invalid_argument "Space.dense_law: successor outside the space")
    (fun () -> ignore (Validate.Space.dense_law space [ (99, 1.) ]));
  Alcotest.check_raises "duplicate state"
    (Invalid_argument "Space.make: duplicate state") (fun () ->
      ignore (Validate.Space.make [| 1; 1 |]));
  (* A simulator stepping outside the space is counted, not raised. *)
  let rng = Prng.Rng.create ~seed:5 () in
  let c =
    Validate.Space.collect ~rng ~reps:10 space ~sample:(fun _g -> [| 99 |])
  in
  Alcotest.(check int) "escapes counted" 10 c.Validate.Space.escapes;
  Alcotest.(check int) "nothing tallied" 0 (Stats.Freq.total c.Validate.Space.freq)

(* --- Estimators ------------------------------------------------------ *)

let test_estimators () =
  let uniform = [| 0.5; 0.5 |] in
  let balanced = Stats.Freq.create ~size:2 in
  Stats.Freq.add balanced 0 500;
  Stats.Freq.add balanced 1 500;
  check_float "plugin tv of a perfect match" 0.
    (Validate.Estimators.plugin_tv balanced ~expected:uniform);
  check_float "corrected tv clamps at 0" 0.
    (Validate.Estimators.bias_corrected_tv balanced ~expected:uniform);
  let g = Validate.Estimators.g_test balanced ~expected:uniform in
  check_float "G of a perfect match is 0" 0. g.Validate.Estimators.statistic;
  check_float "p of a perfect match is 1" 1. g.Validate.Estimators.p_value;
  let skewed = Stats.Freq.create ~size:2 in
  Stats.Freq.add skewed 0 900;
  Stats.Freq.add skewed 1 100;
  let g = Validate.Estimators.g_test skewed ~expected:uniform in
  Alcotest.(check bool) "gross mismatch rejected" true
    (g.Validate.Estimators.p_value < 1e-10);
  let x = Validate.Estimators.chi_square_test skewed ~expected:uniform in
  Alcotest.(check bool) "chi-square agrees" true
    (x.Validate.Estimators.p_value < 1e-10);
  (* Mass on a structurally impossible cell. *)
  let g = Validate.Estimators.g_test skewed ~expected:[| 1.; 0. |] in
  Alcotest.(check int) "forbidden observations" 100
    g.Validate.Estimators.forbidden;
  check_float "forbidden mass means p = 0" 0. g.Validate.Estimators.p_value;
  Alcotest.(check bool) "statistic is infinite" true
    (g.Validate.Estimators.statistic = infinity);
  (* Residuals point at the deviating cells, symmetrically here. *)
  let rs = Validate.Estimators.standardized_residuals skewed ~expected:uniform in
  Alcotest.(check bool) "cell 0 is heavy" true (rs.(0) > 3.);
  Alcotest.(check bool) "cell 1 is light" true (rs.(1) < -3.);
  (* The null bias shrinks as 1/sqrt(N). *)
  Alcotest.(check bool) "bias decreases with N" true
    (Validate.Estimators.tv_bias ~expected:uniform ~total:100
    > Validate.Estimators.tv_bias ~expected:uniform ~total:10_000);
  let rng = Prng.Rng.create ~seed:3 () in
  let lo, hi = Validate.Estimators.tv_ci ~rng skewed ~expected:uniform in
  Alcotest.(check bool) "CI is an interval in [0,1]" true
    (0. <= lo && lo <= hi && hi <= 1.);
  Alcotest.(check bool) "CI sits near the point estimate" true
    (lo <= 0.4 && hi >= 0.35)

(* --- Sequential ------------------------------------------------------ *)

let bernoulli_sampler rng ~p =
  fun k ->
  let freq = Stats.Freq.create ~size:2 in
  for _ = 1 to k do
    Stats.Freq.observe freq (if Prng.Rng.float rng < p then 1 else 0)
  done;
  { Validate.Space.freq; escapes = 0 }

let test_sequential () =
  let cfg = Validate.Sequential.config ~batch:1000 ~max_batches:4 ~alpha:0.01 () in
  check_float "Bonferroni split" 0.0025
    (let rng = Prng.Rng.create ~seed:1 () in
     let o =
       Validate.Sequential.test cfg ~rng ~expected:[| 0.25; 0.75 |]
         ~sample:(bernoulli_sampler rng ~p:0.75)
     in
     o.Validate.Sequential.alpha_adjusted);
  let rng = Prng.Rng.create ~seed:2 () in
  let conforming =
    Validate.Sequential.test cfg ~rng ~expected:[| 0.25; 0.75 |]
      ~sample:(bernoulli_sampler rng ~p:0.75)
  in
  Alcotest.(check string) "true law passes" "PASS"
    (Validate.Sequential.verdict_name conforming.Validate.Sequential.verdict);
  let rng = Prng.Rng.create ~seed:2 () in
  let wrong =
    Validate.Sequential.test cfg ~rng ~expected:[| 0.25; 0.75 |]
      ~sample:(bernoulli_sampler rng ~p:0.6)
  in
  Alcotest.(check string) "wrong law fails" "FAIL"
    (Validate.Sequential.verdict_name wrong.Validate.Sequential.verdict);
  (* Any escape is an immediate failure. *)
  let rng = Prng.Rng.create ~seed:3 () in
  let escaping k =
    let c = bernoulli_sampler rng ~p:0.75 k in
    { c with Validate.Space.escapes = 1 }
  in
  let esc =
    Validate.Sequential.test cfg ~rng ~expected:[| 0.25; 0.75 |]
      ~sample:escaping
  in
  Alcotest.(check string) "escapes fail" "FAIL"
    (Validate.Sequential.verdict_name esc.Validate.Sequential.verdict);
  Alcotest.(check int) "escape failure is immediate" 1
    esc.Validate.Sequential.looks

(* --- the corrupted-stepper contract ---------------------------------- *)

(* A stepper with a deliberate off-by-one bin choice: ABKU[2] probes two
   ranks, but the ball lands one rank below the probe winner.  The
   conformance harness must reject it at alpha = 0.01 while the real
   stepper passes — on every seed tried. *)
let corrupted_abku2_subject ~n ~m =
  let p =
    Core.Dynamic_process.make Core.Scenario.A (Core.Scheduling_rule.abku 2) ~n
  in
  let start = Lv.all_in_one ~n ~m in
  let fresh_sim () =
    let v = Mv.of_load_vector start in
    Engine.Sim.make ~watermark:false
      ~step:(fun g ->
        let u = Prng.Rng.float g in
        ignore (Mv.decr_at v (Core.Scenario.remove_rank Core.Scenario.A v ~u));
        let i = Prng.Rng.int g n and j = Prng.Rng.int g n in
        let winner = if i > j then i else j in
        let off_by_one = if winner + 1 < n then winner + 1 else winner in
        ignore (Mv.incr_at v off_by_one))
      ~observe:(fun () -> Mv.to_load_vector v)
      ~reset:(fun lv -> Mv.set_from_load_vector v lv)
      ~probe:(fun () -> Mv.max_load v)
      ()
  in
  Validate.Subject.P
    {
      Validate.Subject.name = Printf.sprintf "corrupted Id-ABKU[2] n=%d m=%d" n m;
      family = "balls";
      states = Markov.Partition_space.enumerate ~n ~m;
      transitions = Core.Dynamic_process.exact_transitions p;
      fresh_sim;
      start;
      bound = None;
      block_rows = None;
    }

let test_corrupted_stepper_fails_true_passes () =
  let seeds = [ 11; 22; 33 ] in
  List.iter
    (fun seed ->
      let rng = Prng.Rng.create ~seed () in
      let bad =
        Validate.Conformance.run_subject ~quick:true ~alpha:0.01 ~rng
          (corrupted_abku2_subject ~n:4 ~m:4)
      in
      Alcotest.(check string)
        (Printf.sprintf "corrupted stepper fails (seed %d)" seed)
        "FAIL"
        (Validate.Sequential.verdict_name bad.Validate.Conformance.verdict);
      let rng = Prng.Rng.create ~seed () in
      let good =
        Validate.Conformance.run_subject ~quick:true ~alpha:0.01 ~rng
          (Validate.Subject.balls Core.Scenario.A
             (Core.Scheduling_rule.abku 2) ~n:4 ~m:4)
      in
      Alcotest.(check string)
        (Printf.sprintf "true stepper passes (seed %d)" seed)
        "PASS"
        (Validate.Sequential.verdict_name good.Validate.Conformance.verdict))
    seeds

(* --- report ---------------------------------------------------------- *)

let test_report_json_and_exit_code () =
  let rng = Prng.Rng.create ~seed:7 () in
  let subject =
    Validate.Conformance.run_subject ~quick:true ~alpha:0.01 ~rng
      (Validate.Subject.balls Core.Scenario.A (Core.Scheduling_rule.abku 2)
         ~n:3 ~m:3)
  in
  let report =
    {
      Validate.Conformance.alpha = 0.01;
      seed = 7;
      quick = true;
      subjects = [ subject ];
      verdict = subject.Validate.Conformance.verdict;
    }
  in
  Alcotest.(check int) "pass exits 0" 0 (Validate.Report.exit_code report);
  let json = Validate.Report.to_json report in
  (match Experiment.Json.member "schema" json with
  | Some (Experiment.Json.String s) ->
      Alcotest.(check string) "schema" Validate.Report.schema s
  | _ -> Alcotest.fail "report lacks a schema field");
  (* The document round-trips through the serializer. *)
  (match
     Experiment.Json.of_string (Experiment.Json.to_string json)
   with
  | Ok round -> Alcotest.(check bool) "round-trip" true (round = json)
  | Error e -> Alcotest.fail e);
  let failing = { report with Validate.Conformance.verdict = Validate.Sequential.Fail } in
  Alcotest.(check int) "fail exits 1" 1 (Validate.Report.exit_code failing)

let suite =
  [
    ("open exact transitions", `Quick, test_open_exact_transitions);
    ("relocation exact transitions", `Quick, test_relocation_exact_transitions);
    ("space", `Quick, test_space);
    ("estimators", `Quick, test_estimators);
    ("sequential tester", `Quick, test_sequential);
    ( "corrupted stepper fails, true passes",
      `Slow,
      test_corrupted_stepper_fails_true_passes );
    ("report json and exit code", `Quick, test_report_json_and_exit_code);
  ]
