(* Tests for the generic coupling machinery and the Path Coupling Lemma
   calculators. *)

module Cc = Coupling.Coupled_chain
module Pc = Coupling.Path_coupling

(* A toy chain on {0, ..., k-1}: jump to a uniform state.  Under the
   identity coupling two copies meet in one step. *)
let uniform_chain k = fun g _s -> Prng.Rng.int g k

let test_identity_coupling_meets () =
  let c =
    Cc.of_identity ~chain_step:(uniform_chain 10) ~equal:( = )
      ~distance:(fun a b -> abs (a - b))
  in
  let g = Prng.Rng.create ~seed:11 () in
  match Coupling.Coalescence.time c g 0 9 ~limit:5 with
  | Some t -> Alcotest.(check int) "meets immediately" 1 t
  | None -> Alcotest.fail "did not meet"

let test_identity_coupling_stays_together () =
  let c =
    Cc.of_identity ~chain_step:(uniform_chain 10) ~equal:( = )
      ~distance:(fun a b -> abs (a - b))
  in
  let g = Prng.Rng.create ~seed:11 () in
  let x = ref 3 and y = ref 3 in
  for _ = 1 to 20 do
    let x', y' = c.Cc.step g !x !y in
    x := x';
    y := y'
  done;
  Alcotest.(check int) "equal forever" !x !y

(* A lazy random walk on a cycle of size k, coupled by sharing the move:
   both copies move in the same direction.  The difference is preserved,
   so copies never meet: coalescence must report failure. *)
let test_translation_coupling_never_meets () =
  let k = 8 in
  let step g x y =
    let d = if Prng.Rng.bool g then 1 else k - 1 in
    ((x + d) mod k, (y + d) mod k)
  in
  let c = Cc.make ~step ~equal:( = ) ~distance:(fun a b -> abs (a - b)) in
  let g = Prng.Rng.create ~seed:3 () in
  Alcotest.(check (option int)) "never meets" None
    (Coupling.Coalescence.time c g 0 4 ~limit:200)

let test_coalescence_zero_when_equal () =
  let c =
    Cc.of_identity ~chain_step:(uniform_chain 5) ~equal:( = )
      ~distance:(fun a b -> abs (a - b))
  in
  let g = Prng.Rng.create () in
  Alcotest.(check (option int)) "t=0" (Some 0)
    (Coupling.Coalescence.time c g 2 2 ~limit:10)

let test_measure () =
  let c =
    Cc.of_identity ~chain_step:(uniform_chain 6) ~equal:( = )
      ~distance:(fun a b -> abs (a - b))
  in
  let rng = Prng.Rng.create ~seed:5 () in
  let m =
    Coupling.Coalescence.measure ~reps:50 ~limit:100 ~rng c ~init:(fun g ->
        (Prng.Rng.int g 6, Prng.Rng.int g 6))
  in
  Alcotest.(check int) "no failures" 0 m.Coupling.Coalescence.failures;
  Alcotest.(check int) "all runs counted" 50
    (Array.length m.Coupling.Coalescence.times);
  Alcotest.(check bool) "median sane" true
    (m.Coupling.Coalescence.median >= 0. && m.Coupling.Coalescence.median <= 1.)

let test_measure_all_failures () =
  let step _g x y = (x, y) in
  let c = Cc.make ~step ~equal:( = ) ~distance:(fun a b -> abs (a - b)) in
  let rng = Prng.Rng.create () in
  let m =
    Coupling.Coalescence.measure ~reps:5 ~limit:10 ~rng c ~init:(fun _ -> (0, 1))
  in
  Alcotest.(check int) "all failed" 5 m.Coupling.Coalescence.failures;
  Alcotest.(check bool) "median nan" true (Float.is_nan m.Coupling.Coalescence.median)

let test_trace_distance () =
  let step _g x y = (x + 1, y + 2) in
  let c = Cc.make ~step ~equal:( = ) ~distance:(fun a b -> abs (a - b)) in
  let g = Prng.Rng.create () in
  let trace = Coupling.Coalescence.trace_distance c g 0 1 ~every:1 ~limit:3 in
  Alcotest.(check (list (pair int int))) "distances grow"
    [ (0, 1); (1, 2); (2, 3); (3, 4) ] trace;
  let stopped = Coupling.Coalescence.trace_distance c g 5 5 ~every:1 ~limit:3 in
  Alcotest.(check (list (pair int int))) "stops when equal" [ (0, 0) ] stopped

let test_bound_contractive () =
  (* Theorem 1 shape: beta = 1 - 1/m, diameter m gives ~ m ln(m/eps). *)
  let m = 100 in
  let b =
    Pc.bound_contractive ~beta:(1. -. (1. /. float_of_int m)) ~diameter:m
      ~eps:0.25
  in
  let expected = float_of_int m *. log (float_of_int m /. 0.25) in
  Alcotest.(check bool) "matches m ln(m/eps)" true
    (Float.abs (b -. expected) < 1e-6)

let test_bound_contractive_monotone () =
  let b1 = Pc.bound_contractive ~beta:0.5 ~diameter:10 ~eps:0.25 in
  let b2 = Pc.bound_contractive ~beta:0.9 ~diameter:10 ~eps:0.25 in
  Alcotest.(check bool) "slower contraction, bigger bound" true (b2 > b1);
  let b3 = Pc.bound_contractive ~beta:0.5 ~diameter:10 ~eps:0.01 in
  Alcotest.(check bool) "smaller eps, bigger bound" true (b3 > b1)

let test_bound_non_contractive () =
  let b = Pc.bound_non_contractive ~alpha:0.5 ~diameter:10 ~eps:0.25 in
  (* ceil(e * 100 / 0.5) * ceil(ln 4) = 544 * 2 *)
  Alcotest.(check bool) "value" true (Float.abs (b -. 1088.) < 1e-6)

let test_bound_invalid () =
  Alcotest.check_raises "beta = 1"
    (Invalid_argument "Path_coupling.bound_contractive: beta must be in [0,1)")
    (fun () -> ignore (Pc.bound_contractive ~beta:1. ~diameter:2 ~eps:0.5));
  Alcotest.check_raises "alpha = 0"
    (Invalid_argument "Path_coupling.bound_non_contractive: alpha must be in (0,1]")
    (fun () -> ignore (Pc.bound_non_contractive ~alpha:0. ~diameter:2 ~eps:0.5));
  Alcotest.check_raises "bad eps"
    (Invalid_argument "Path_coupling.bound_contractive: eps must be in (0,1)")
    (fun () -> ignore (Pc.bound_contractive ~beta:0.5 ~diameter:2 ~eps:0.))

let test_beta_estimate () =
  (* Coupling that always contracts distance-1 pairs to 0: beta = 0 and
     alpha = 1. *)
  let step _g x _y = (x, x) in
  let c = Cc.make ~step ~equal:( = ) ~distance:(fun a b -> abs (a - b)) in
  let rng = Prng.Rng.create () in
  let beta, alpha =
    Pc.beta_estimate ~reps:100 ~rng c ~pair:(fun _g -> (0, 1))
  in
  Alcotest.(check (float 1e-9)) "beta" 0. beta;
  Alcotest.(check (float 1e-9)) "alpha" 1. alpha

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("identity coupling meets", test_identity_coupling_meets);
      ("identity coupling sticky", test_identity_coupling_stays_together);
      ("translation coupling never meets", test_translation_coupling_never_meets);
      ("coalescence zero when equal", test_coalescence_zero_when_equal);
      ("measure", test_measure);
      ("measure all failures", test_measure_all_failures);
      ("trace distance", test_trace_distance);
      ("bound contractive (Thm 1 shape)", test_bound_contractive);
      ("bound contractive monotone", test_bound_contractive_monotone);
      ("bound non-contractive", test_bound_non_contractive);
      ("bound invalid args", test_bound_invalid);
      ("beta estimate", test_beta_estimate);
    ]
