(* Tests for the generalized removal rules and the ADAP mean-field
   extension. *)

module Mf = Fluid.Mean_field
module Mv = Loadvec.Mutable_vector
module Lv = Loadvec.Load_vector
module Sr = Core.Scheduling_rule

let feq ?(tol = 1e-9) a b = Float.abs (a -. b) <= tol

(* ---- generalized removal ---- *)

let rng ?(seed = 42) () = Prng.Rng.create ~seed ()

let test_removal_matches_scenarios () =
  (* The built-in scenario_a/scenario_b rules agree with Core.Scenario
     for every u on a fixed state. *)
  let v = Mv.of_load_vector (Lv.of_array [| 4; 2; 2; 0 |]) in
  List.iter
    (fun u ->
      Alcotest.(check int) "A agrees"
        (Core.Scenario.remove_rank Core.Scenario.A v ~u)
        (Core.Removal.remove_rank Core.Removal.scenario_a v ~u);
      Alcotest.(check int) "B agrees"
        (Core.Scenario.remove_rank Core.Scenario.B v ~u)
        (Core.Removal.remove_rank Core.Removal.scenario_b v ~u))
    [ 0.0; 0.1; 0.3; 0.49; 0.51; 0.7; 0.9; 0.999 ]

let test_removal_heaviest () =
  let v = Mv.of_load_vector (Lv.of_array [| 4; 4; 2; 0 |]) in
  for k = 0 to 9 do
    let u = float_of_int k /. 10. in
    let r = Core.Removal.remove_rank Core.Removal.heaviest v ~u in
    Alcotest.(check bool) "only fullest ranks" true (r = 0 || r = 1)
  done

let test_removal_load_squared_law () =
  let g = rng () in
  let v = Mv.of_load_vector (Lv.of_array [| 3; 1; 0 |]) in
  let counts = Array.make 3 0 in
  let reps = 30_000 in
  for _ = 1 to reps do
    let r =
      Core.Removal.remove_rank Core.Removal.load_squared v ~u:(Prng.Rng.float g)
    in
    counts.(r) <- counts.(r) + 1
  done;
  (* weights 9 : 1 : 0 *)
  let frac0 = float_of_int counts.(0) /. float_of_int reps in
  Alcotest.(check bool) "rank0 ~ 0.9" true (Float.abs (frac0 -. 0.9) < 0.01);
  Alcotest.(check int) "rank2 never" 0 counts.(2)

let test_removal_step_conserves () =
  let g = rng () in
  List.iter
    (fun rule ->
      let v = Mv.of_load_vector (Lv.all_in_one ~n:8 ~m:8) in
      for _ = 1 to 500 do
        Core.Removal.step rule (Sr.abku 2) g v
      done;
      Alcotest.(check int)
        (Core.Removal.name rule ^ " conserves")
        8 (Mv.total v))
    [
      Core.Removal.scenario_a;
      Core.Removal.scenario_b;
      Core.Removal.load_squared;
      Core.Removal.heaviest;
    ]

let test_removal_invalid () =
  let v = Mv.of_load_vector (Lv.of_array [| 0; 0 |]) in
  Alcotest.check_raises "no balls" (Invalid_argument "Removal.remove_rank: no balls")
    (fun () ->
      ignore (Core.Removal.remove_rank Core.Removal.scenario_a v ~u:0.5));
  let bad = Core.Removal.make ~name:"bad" (fun loads -> Array.map (fun _ -> -1.) loads) in
  let v = Mv.of_load_vector (Lv.of_array [| 1; 0 |]) in
  Alcotest.check_raises "negative weights"
    (Invalid_argument "Removal.remove_rank: negative weight") (fun () ->
      ignore (Core.Removal.remove_rank bad v ~u:0.5))

let test_removal_ordering_on_recovery () =
  (* Repair-friendliness ordering: heaviest < load^2 < A < B in recovery
     steps from the all-in-one state. *)
  let n = 64 in
  let g = rng ~seed:11 () in
  let recovery rule =
    let v = Mv.of_load_vector (Lv.all_in_one ~n ~m:n) in
    let steps = ref 0 in
    while Mv.max_load v > 4 && !steps < 10_000_000 do
      Core.Removal.step rule (Sr.abku 2) g v;
      incr steps
    done;
    !steps
  in
  let med rule =
    Stats.Quantile.median
      (Array.init 7 (fun _ -> float_of_int (recovery rule)))
  in
  let h = med Core.Removal.heaviest in
  let sq = med Core.Removal.load_squared in
  let a = med Core.Removal.scenario_a in
  let b = med Core.Removal.scenario_b in
  Alcotest.(check bool)
    (Printf.sprintf "ordering %.0f <= %.0f <= %.0f <= %.0f" h sq a b)
    true
    (h <= sq && sq <= a && a <= b)

let test_removal_coupled_coalesces () =
  List.iter
    (fun rule ->
      let n = 8 in
      let c = Core.Removal.coupled rule (Sr.abku 2) in
      let g = rng ~seed:7 () in
      let x = Mv.of_load_vector (Lv.all_in_one ~n ~m:n) in
      let y = Mv.of_load_vector (Lv.uniform ~n ~m:n) in
      match Coupling.Coalescence.time c g x y ~limit:1_000_000 with
      | Some _ -> ()
      | None ->
          Alcotest.failf "%s coupling did not coalesce" (Core.Removal.name rule))
    [
      Core.Removal.scenario_a;
      Core.Removal.scenario_b;
      Core.Removal.load_squared;
      Core.Removal.heaviest;
    ]

let test_removal_coupled_faithful_totals () =
  let g = rng () in
  let c = Core.Removal.coupled Core.Removal.load_squared (Sr.abku 2) in
  let x = Mv.of_load_vector (Lv.all_in_one ~n:6 ~m:9) in
  let y = Mv.of_load_vector (Lv.uniform ~n:6 ~m:9) in
  for _ = 1 to 100 do
    let x', y' = c.Coupling.Coupled_chain.step g x y in
    Alcotest.(check int) "x total" 9 (Mv.total x');
    Alcotest.(check int) "y total" 9 (Mv.total y')
  done

(* ---- ADAP mean field ---- *)

let profile = [| 0.7; 0.3; 0.05; 0.002; 0. |]

let test_adap_landing_const_matches_power () =
  (* Constant threshold d: the landing law's tail is s^d. *)
  List.iter
    (fun d ->
      let landing = Mf.adap_landing ~threshold:(fun _ -> d) profile in
      (* tail_i = sum_{l >= i} landing(l) must equal s_i^d *)
      let levels = Array.length profile in
      for i = 0 to levels do
        let tail = ref 0. in
        for l = i to levels do
          tail := !tail +. landing.(l)
        done;
        let s_i = if i = 0 then 1. else profile.(i - 1) in
        if not (feq ~tol:1e-9 !tail (s_i ** float_of_int d)) then
          Alcotest.failf "d=%d tail_%d = %g vs %g" d i !tail
            (s_i ** float_of_int d)
      done)
    [ 1; 2; 3 ]

let test_adap_landing_sums_to_one () =
  let landing =
    Mf.adap_landing ~threshold:(fun l -> 1 + l) profile
  in
  let total = Array.fold_left ( +. ) 0. landing in
  Alcotest.(check bool) "mass 1" true (feq ~tol:1e-9 total 1.)

let test_expected_probes_fluid () =
  Alcotest.(check bool) "const d = d" true
    (feq ~tol:1e-9 (Mf.expected_probes_fluid ~threshold:(fun _ -> 3) profile) 3.);
  let e = Mf.expected_probes_fluid ~threshold:(fun l -> 1 + l) profile in
  Alcotest.(check bool) "adaptive between 1 and 3" true (e >= 1. && e <= 3.)

let test_adap_fixed_points () =
  let threshold l = if l < 1 then 1 else if l < 2 then 2 else 4 in
  let sa = Mf.fixed_point_a_adap ~threshold ~m_over_n:1. ~levels:25 in
  Alcotest.(check bool) "A mass" true (feq ~tol:1e-4 (Mf.mean_load sa) 1.);
  let sb = Mf.fixed_point_b_adap ~threshold ~m_over_n:1. ~levels:25 in
  Alcotest.(check bool) "B mass" true (feq ~tol:1e-4 (Mf.mean_load sb) 1.);
  (* Consistency: the ADAP machinery at constant threshold 2 reproduces
     the ABKU[2] fixed point. *)
  let s_adap = Mf.fixed_point_a_adap ~threshold:(fun _ -> 2) ~m_over_n:1. ~levels:25 in
  let s_abku = Mf.fixed_point_a ~d:2 ~m_over_n:1. ~levels:25 in
  Array.iteri
    (fun i x ->
      if not (feq ~tol:1e-6 x s_abku.(i)) then
        Alcotest.failf "level %d: %g vs %g" (i + 1) x s_abku.(i))
    s_adap

let test_adap_fluid_matches_simulation () =
  (* Id-ADAP(1;2;4): simulated stationary s_2 vs the ADAP fluid fixed
     point. *)
  let n = 2048 in
  let x = Core.Adaptive.of_list [ 1; 2; 4 ] in
  let threshold l = Core.Adaptive.threshold x l in
  let fluid = Mf.fixed_point_a_adap ~threshold ~m_over_n:1. ~levels:20 in
  let g = rng ~seed:21 () in
  let sys =
    Core.System.create Core.Scenario.A (Sr.adap x)
      (Core.Bins.of_loads (Lv.to_array (Lv.uniform ~n ~m:n)))
  in
  Core.System.run g sys ~steps:(50 * n);
  let acc = Stats.Summary.create () in
  for _ = 1 to 100 do
    Core.System.run g sys ~steps:n;
    let loads = Core.Bins.loads (Core.System.bins sys) in
    let s2 = Array.fold_left (fun a l -> if l >= 2 then a + 1 else a) 0 loads in
    Stats.Summary.add acc (float_of_int s2 /. float_of_int n)
  done;
  let sim = Stats.Summary.mean acc in
  Alcotest.(check bool)
    (Printf.sprintf "s_2 sim %.4f vs fluid %.4f" sim fluid.(1))
    true
    (Float.abs (sim -. fluid.(1)) < 0.02)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("removal = scenarios", test_removal_matches_scenarios);
      ("removal heaviest", test_removal_heaviest);
      ("removal load-squared law", test_removal_load_squared_law);
      ("removal step conserves", test_removal_step_conserves);
      ("removal invalid", test_removal_invalid);
      ("removal repair-friendliness ordering", test_removal_ordering_on_recovery);
      ("removal coupled coalesces", test_removal_coupled_coalesces);
      ("removal coupled faithful totals", test_removal_coupled_faithful_totals);
      ("ADAP landing: const = power", test_adap_landing_const_matches_power);
      ("ADAP landing sums to 1", test_adap_landing_sums_to_one);
      ("fluid expected probes", test_expected_probes_fluid);
      ("ADAP fixed points", test_adap_fixed_points);
      ("ADAP fluid matches simulation", test_adap_fluid_matches_simulation);
    ]
