(* Cross-cutting property tests: invariants that tie several modules
   together, each stated as a qcheck law. *)

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector
module Sr = Core.Scheduling_rule
module C = Edgeorient.Class_chain

let rng_of seed = Prng.Rng.create ~seed ()

let random_vector g ~n ~m =
  let a = Array.make n 0 in
  for _ = 1 to m do
    let i = Prng.Rng.int g n in
    a.(i) <- a.(i) + 1
  done;
  Lv.of_array a

let qcheck_counts_by_load_reconstructs =
  QCheck.Test.make ~name:"counts_by_load partitions the vector" ~count:300
    QCheck.(triple small_int (int_range 1 12) (int_range 0 40))
    (fun (seed, n, m) ->
      let v = random_vector (rng_of seed) ~n ~m in
      let classes = Lv.counts_by_load v in
      let total_bins = List.fold_left (fun a (_, c) -> a + c) 0 classes in
      let total_balls = List.fold_left (fun a (l, c) -> a + (l * c)) 0 classes in
      let decreasing =
        let rec ok = function
          | (l1, _) :: ((l2, _) :: _ as rest) -> l1 > l2 && ok rest
          | _ -> true
        in
        ok classes
      in
      total_bins = n && total_balls = m && decreasing)

let qcheck_diameter_bound =
  (* The paper's remark: Delta(v, u) <= m - ceil(m/n) for v, u in
     Omega_m. *)
  QCheck.Test.make ~name:"Delta diameter <= m - ceil(m/n)" ~count:300
    QCheck.(triple small_int (int_range 1 10) (int_range 1 30))
    (fun (seed, n, m) ->
      let g = rng_of seed in
      let v = random_vector g ~n ~m and u = random_vector g ~n ~m in
      Lv.delta v u <= m - ((m + n - 1) / n))

let qcheck_oplus_ominus_roundtrip =
  QCheck.Test.make ~name:"ominus inverts oplus" ~count:300
    QCheck.(triple small_int (int_range 1 10) (int_range 0 25))
    (fun (seed, n, m) ->
      let g = rng_of seed in
      let v = random_vector g ~n ~m in
      let i = Prng.Rng.int g n in
      let v' = Lv.oplus v i in
      (* The added ball sits at first_equal of the new value; removing a
         ball of that value restores v. *)
      let j = Lv.first_equal v' (Lv.first_equal v i) in
      Lv.equal (Lv.ominus v' j) v)

let qcheck_abku_rank_distribution_monotone =
  QCheck.Test.make ~name:"ABKU rank distribution increases with rank" ~count:200
    QCheck.(pair (int_range 2 30) (int_range 2 4))
    (fun (n, d) ->
      let loads = Array.make n 0 in
      let dist = Sr.rank_distribution (Sr.abku d) ~loads in
      let ok = ref true in
      for j = 1 to n - 1 do
        if dist.(j) < dist.(j - 1) -. 1e-12 then ok := false
      done;
      !ok)

let qcheck_exact_transitions_stay_in_space =
  QCheck.Test.make ~name:"exact transitions stay inside Omega_m" ~count:100
    QCheck.(quad small_int (int_range 2 5) (int_range 1 7) bool)
    (fun (seed, n, m, scenario_b) ->
      let g = rng_of seed in
      let scenario = if scenario_b then Core.Scenario.B else Core.Scenario.A in
      let process = Core.Dynamic_process.make scenario (Sr.abku 2) ~n in
      let states = Markov.Partition_space.enumerate ~n ~m in
      let idx = Markov.Partition_space.index_of_space states in
      let v = random_vector g ~n ~m in
      List.for_all
        (fun (s, _) ->
          match Markov.Partition_space.find idx s with
          | _ -> true
          | exception Not_found -> false)
        (Core.Dynamic_process.exact_transitions process v))

let qcheck_partition_count_matches_enumerate =
  (* The closed-form DP count against the explicit enumeration over the
     full grid up to n = m = 12 — the sizes the extended e07/e14 grids
     rely on. *)
  QCheck.Test.make ~name:"Partition_space.count = |enumerate| up to 12x12"
    ~count:300
    QCheck.(pair (int_range 1 12) (int_range 0 12))
    (fun (n, m) ->
      Markov.Partition_space.count ~n ~m
      = Array.length (Markov.Partition_space.enumerate ~n ~m))

(* A random lazy stochastic chain: strictly positive off-diagonal mass
   (irreducible and aperiodic, so everything is well defined) with a
   self-loop weight [a] that slows mixing down enough to exercise the
   doubling-then-bisect search away from the t <= 1 corner. *)
let random_chain g ~n ~a =
  let states = Array.init n Fun.id in
  let rows =
    Array.init n (fun _ ->
        let w = Array.init n (fun _ -> 0.05 +. Prng.Rng.float g) in
        let total = Array.fold_left ( +. ) 0. w in
        Array.map (fun x -> x /. total *. (1. -. a)) w)
  in
  Markov.Exact.build ~states ~transitions:(fun i ->
      (i, a) :: Array.to_list (Array.mapi (fun j p -> (j, p)) rows.(i)))

let qcheck_sparse_dense_agree =
  (* The sparse rewrite against the historical dense reference: the
     stationary distributions agree to 1e-9 entrywise and the mixing
     times are identical — also across domain counts. *)
  QCheck.Test.make ~name:"sparse and dense stationary/mixing agree" ~count:60
    QCheck.(triple small_int (int_range 2 8) (int_range 0 9))
    (fun (seed, n, tenths) ->
      let a = float_of_int tenths /. 10. in
      let chain = random_chain (rng_of seed) ~n ~a in
      let pi_sparse = Markov.Exact.stationary chain in
      let pi_dense = Markov.Exact.Dense.stationary chain in
      let close =
        Array.for_all2
          (fun x y -> Float.abs (x -. y) <= 1e-9)
          pi_sparse pi_dense
      in
      let eps = 0.25 in
      let tau_dense = Markov.Exact.Dense.mixing_time ~eps chain in
      let tau_seq = Markov.Exact.mixing_time ~eps ~domains:1 chain in
      let tau_par = Markov.Exact.mixing_time ~eps ~domains:2 chain in
      close && tau_seq = tau_dense && tau_par = tau_seq)

let qcheck_empirical_tv_range =
  QCheck.Test.make ~name:"empirical TV in [0,1]" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 30) (int_range 0 5))
              (list_of_size (Gen.int_range 1 30) (int_range 0 5)))
    (fun (a, b) ->
      let tv =
        Markov.Empirical.tv_between_samples (Array.of_list a) (Array.of_list b)
      in
      tv >= 0. && tv <= 1.)

let qcheck_emd_metric =
  QCheck.Test.make ~name:"edge EMD is a metric" ~count:200
    QCheck.(pair small_int (int_range 3 8))
    (fun (seed, n) ->
      let g = rng_of seed in
      let state () =
        let diffs = Array.make n 0 in
        for _ = 1 to n do
          let i, j = Prng.Rng.pair_distinct g n in
          if abs diffs.(i) < n - 1 && abs diffs.(j) < n - 1 then begin
            diffs.(i) <- diffs.(i) + 1;
            diffs.(j) <- diffs.(j) - 1
          end
        done;
        C.of_discrepancies diffs
      in
      let x = state () and y = state () and z = state () in
      C.emd x y = C.emd y x
      && C.emd x z <= C.emd x y + C.emd y z
      && (C.emd x y = 0) = C.equal x y)

let qcheck_parallel_places_all =
  QCheck.Test.make ~name:"parallel allocation places every ball" ~count:100
    QCheck.(quad small_int (int_range 1 64) (int_range 0 128) (int_range 0 4))
    (fun (seed, n, m, rounds) ->
      let g = rng_of seed in
      let result = Core.Parallel_alloc.run g ~n ~m ~d:2 ~rounds () in
      Array.fold_left ( + ) 0 result.loads = m
      && result.fallback_balls <= m
      && result.max_load <= m)

let qcheck_weighted_mass_balance =
  QCheck.Test.make ~name:"weighted system conserves mass" ~count:100
    QCheck.(triple small_int (int_range 1 16) (int_range 0 50))
    (fun (seed, n, m) ->
      let g = rng_of seed in
      let t = Core.Weighted.static_run g ~n ~m ~d:2 ~dist:Core.Weighted.Uniform_unit in
      let sum = ref 0. in
      for b = 0 to n - 1 do
        sum := !sum +. Core.Weighted.load t b
      done;
      Float.abs (!sum -. Core.Weighted.total_weight t) < 1e-9
      && Core.Weighted.num_balls t = m)

let qcheck_theorem1_monotone =
  QCheck.Test.make ~name:"Theorem 1 monotone in m and 1/eps" ~count:200
    QCheck.(pair (int_range 1 1000) (float_range 0.01 0.9))
    (fun (m, eps) ->
      Theory.Bounds.theorem1 ~m:(m + 1) ~eps >= Theory.Bounds.theorem1 ~m ~eps
      && Theory.Bounds.theorem1 ~m ~eps:(eps /. 2.)
         >= Theory.Bounds.theorem1 ~m ~eps)

let qcheck_delayed_bound_at_least_block =
  QCheck.Test.make ~name:"delayed bound >= one block" ~count:200
    QCheck.(quad (int_range 1 20) (float_range 0. 0.99) (int_range 1 50)
              (float_range 0.01 0.9))
    (fun (block, beta, diameter, eps) ->
      Coupling.Delayed.bound ~block ~beta ~diameter ~eps
      >= float_of_int block)

let qcheck_monotone_coupling_preserves_totals =
  QCheck.Test.make ~name:"monotone coupling preserves both totals" ~count:150
    QCheck.(quad small_int (int_range 2 8) (int_range 2 20) bool)
    (fun (seed, n, m, scenario_b) ->
      let g = rng_of seed in
      let scenario = if scenario_b then Core.Scenario.B else Core.Scenario.A in
      let process = Core.Dynamic_process.make scenario (Sr.abku 2) ~n in
      let c = Core.Coupled.monotone process in
      let x = Mv.of_load_vector (random_vector g ~n ~m) in
      let y = Mv.of_load_vector (random_vector g ~n ~m) in
      let ok = ref true in
      for _ = 1 to 20 do
        let x', y' = c.Coupling.Coupled_chain.step g x y in
        if Mv.total x' <> m || Mv.total y' <> m then ok := false
      done;
      !ok)

let qcheck_probe_replay_identical =
  QCheck.Test.make ~name:"probes replay identically from copied rng" ~count:200
    QCheck.(pair small_int (int_range 1 50))
    (fun (seed, n) ->
      let g = rng_of seed in
      let g' = Prng.Rng.copy g in
      let p = Core.Probe.create g ~n and p' = Core.Probe.create g' ~n in
      let ok = ref true in
      for i = 0 to 30 do
        if Core.Probe.get p i <> Core.Probe.get p' i then ok := false
      done;
      !ok)

let qcheck_fluid_profile_valid =
  QCheck.Test.make ~name:"fluid fixed points are monotone profiles in [0,1]"
    ~count:30
    QCheck.(pair (int_range 1 3) (int_range 1 3))
    (fun (d, ratio) ->
      let s =
        Fluid.Mean_field.fixed_point_a ~d ~m_over_n:(float_of_int ratio)
          ~levels:(10 + (10 * ratio))
      in
      let ok = ref true in
      Array.iteri
        (fun i si ->
          if si < -1e-9 || si > 1. +. 1e-9 then ok := false;
          if i > 0 && si > s.(i - 1) +. 1e-9 then ok := false)
        s;
      !ok
      && Float.abs (Fluid.Mean_field.mean_load s -. float_of_int ratio) < 1e-4)

let qcheck_go_left_places_everything =
  QCheck.Test.make ~name:"go-left places every ball in range" ~count:100
    QCheck.(triple small_int (int_range 1 8) (int_range 0 60))
    (fun (seed, d, m) ->
      let n = d * 8 in
      let g = rng_of seed in
      let rule = Core.Go_left.make ~d ~n in
      let bins = Core.Go_left.static_run rule g ~m in
      Core.Bins.num_balls bins = m)

let qcheck_blocked_spmv_agrees =
  (* The blocked store against the flat sparse product on random
     stochastic matrices with irregular row fill, across degenerate and
     generic block sizes — including one size past the column-chunk
     width so the pooled split actually partitions work.  The pooled
     kernel must be bit-identical to the sequential one (the
     column-owner-computes guarantee), and both within float noise of
     the flat product. *)
  QCheck.Test.make ~name:"blocked spmv = flat spmv (blocks 1/7/n, pooled)"
    ~count:40
    QCheck.(pair small_int (oneofl [ 2; 3; 7; 19; 1500 ]))
    (fun (seed, n) ->
      let g = rng_of seed in
      let rows =
        Array.init n (fun _ ->
            let k = 1 + Prng.Rng.int g (min n 6) in
            let cols =
              List.sort_uniq compare (List.init k (fun _ -> Prng.Rng.int g n))
            in
            let w = List.map (fun j -> (j, 0.1 +. Prng.Rng.float g)) cols in
            let total = List.fold_left (fun a (_, x) -> a +. x) 0. w in
            List.map (fun (j, x) -> (j, x /. total)) w)
      in
      let s = Markov.Sparse.of_rows ~rows:n ~cols:n (fun i -> rows.(i)) in
      let src = Array.init n (fun _ -> Prng.Rng.float g) in
      let expect = Markov.Sparse.spmv src s in
      List.for_all
        (fun block_rows ->
          let b = Markov.Blocked_csr.of_sparse ~block_rows s in
          let dst = Array.make n nan in
          let k_seq = Markov.Blocked_csr.kernel b in
          let r_seq = Markov.Blocked_csr.step_l1 k_seq ~src ~dst in
          let close =
            Array.for_all2
              (fun a b -> Float.abs (a -. b) <= 1e-12)
              dst expect
          in
          let dst_par = Array.make n nan in
          let bitwise =
            Parallel.Pool.with_pool ~domains:3 (fun pool ->
                let k_par = Markov.Blocked_csr.kernel ~pool b in
                let r_par =
                  Markov.Blocked_csr.step_l1 k_par ~src ~dst:dst_par
                in
                Float.equal r_seq r_par
                && Array.for_all2 Float.equal dst dst_par)
          in
          close && bitwise)
        [ 1; 7; n ])

exception Killed

let qcheck_checkpoint_resume_tau =
  (* Crash-safety law: kill a checkpointed mixing run at the k-th store
     — sometimes just after the write lands, sometimes mid-write so the
     previous snapshot survives (what the atomic rename guarantees) —
     then resume on a freshly built chain.  The resumed run must
     reproduce the uninterrupted tau exactly.  Small k kills during the
     stationary solve, larger k during the crossing searches, and k past
     the store count degenerates to an uninterrupted checkpointed run. *)
  QCheck.Test.make ~name:"kill + resume reproduces tau exactly" ~count:30
    QCheck.(triple small_int (int_range 3 7) (int_range 1 400))
    (fun (seed, n, kill_at) ->
      let a = 0.6 +. (0.35 *. Prng.Rng.float (rng_of seed)) in
      let make () = random_chain (rng_of (seed + 1)) ~n ~a in
      let eps = 0.05 in
      let tau = Markov.Exact.mixing_time ~eps (make ()) in
      let cell = ref None in
      let stores = ref 0 in
      let killing =
        Markov.Exact_checkpoint.sink ~min_interval:0.
          ~store:(fun s ->
            incr stores;
            if !stores >= kill_at then begin
              if kill_at mod 2 = 0 then cell := Some s;
              raise Killed
            end;
            cell := Some s)
          ~fetch:(fun () -> !cell)
          ()
      in
      (match Markov.Exact.mixing_time ~eps ~checkpoint:killing (make ()) with
      | (_ : int) -> ()
      | exception Killed -> ());
      let resumed =
        Markov.Exact_checkpoint.sink ~min_interval:0.
          ~store:(fun s -> cell := Some s)
          ~fetch:(fun () -> !cell)
          ()
      in
      tau = Markov.Exact.mixing_time ~eps ~checkpoint:resumed (make ()))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      qcheck_counts_by_load_reconstructs;
      qcheck_diameter_bound;
      qcheck_oplus_ominus_roundtrip;
      qcheck_abku_rank_distribution_monotone;
      qcheck_exact_transitions_stay_in_space;
      qcheck_partition_count_matches_enumerate;
      qcheck_sparse_dense_agree;
      qcheck_empirical_tv_range;
      qcheck_emd_metric;
      qcheck_parallel_places_all;
      qcheck_weighted_mass_balance;
      qcheck_theorem1_monotone;
      qcheck_delayed_bound_at_least_block;
      qcheck_monotone_coupling_preserves_totals;
      qcheck_probe_replay_identical;
      qcheck_fluid_profile_valid;
      qcheck_go_left_places_everything;
      qcheck_blocked_spmv_agrees;
      qcheck_checkpoint_resume_tau;
    ]
