(* Tests for probes, adaptive thresholds, scheduling rules and removal
   scenarios. *)

module Sr = Core.Scheduling_rule
module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector

let rng ?(seed = 42) () = Prng.Rng.create ~seed ()

let test_probe_memoized () =
  let g = rng () in
  let p = Core.Probe.create g ~n:10 in
  let b3 = Core.Probe.get p 3 in
  Alcotest.(check int) "stable on re-read" b3 (Core.Probe.get p 3);
  Alcotest.(check int) "consumed" 4 (Core.Probe.consumed p);
  let b0 = Core.Probe.get p 0 in
  Alcotest.(check int) "prefix untouched" b0 (Core.Probe.get p 0)

let test_probe_prefix_max () =
  let g = rng () in
  let p = Core.Probe.create g ~n:100 in
  for i = 0 to 20 do
    let expected = ref 0 in
    for j = 0 to i do
      expected := Stdlib.max !expected (Core.Probe.get p j)
    done;
    Alcotest.(check int)
      (Printf.sprintf "prefix max %d" i)
      !expected
      (Core.Probe.prefix_max p i)
  done

let test_probe_range () =
  let g = rng () in
  let p = Core.Probe.create g ~n:7 in
  for i = 0 to 200 do
    let b = Core.Probe.get p i in
    if b < 0 || b >= 7 then Alcotest.failf "probe out of range: %d" b
  done

let test_probe_invalid () =
  let g = rng () in
  Alcotest.check_raises "n = 0" (Invalid_argument "Probe.create: n must be positive")
    (fun () -> ignore (Core.Probe.create g ~n:0));
  let p = Core.Probe.create g ~n:3 in
  Alcotest.check_raises "negative index"
    (Invalid_argument "Probe.get: negative index") (fun () ->
      ignore (Core.Probe.get p (-1)))

let test_adaptive_constant () =
  let x = Core.Adaptive.constant 3 in
  Alcotest.(check int) "load 0" 3 (Core.Adaptive.threshold x 0);
  Alcotest.(check int) "load 99" 3 (Core.Adaptive.threshold x 99);
  Alcotest.check_raises "d = 0"
    (Invalid_argument "Adaptive.constant: d must be >= 1") (fun () ->
      ignore (Core.Adaptive.constant 0))

let test_adaptive_of_list () =
  let x = Core.Adaptive.of_list [ 1; 2; 4 ] in
  Alcotest.(check int) "l=0" 1 (Core.Adaptive.threshold x 0);
  Alcotest.(check int) "l=2" 4 (Core.Adaptive.threshold x 2);
  Alcotest.(check int) "l=10 repeats last" 4 (Core.Adaptive.threshold x 10);
  Alcotest.check_raises "decreasing"
    (Invalid_argument "Adaptive.of_list: not non-decreasing") (fun () ->
      ignore (Core.Adaptive.of_list [ 2; 1 ]));
  Alcotest.check_raises "below 1"
    (Invalid_argument "Adaptive.of_list: threshold < 1") (fun () ->
      ignore (Core.Adaptive.of_list [ 0; 1 ]))

let test_adaptive_linear_doubling () =
  let x = Core.Adaptive.linear ~slope:2 ~base:1 () in
  Alcotest.(check int) "linear l=3" 7 (Core.Adaptive.threshold x 3);
  let d = Core.Adaptive.doubling () in
  Alcotest.(check int) "doubling l=4" 16 (Core.Adaptive.threshold d 4);
  Alcotest.check_raises "negative load"
    (Invalid_argument "Adaptive.threshold: negative load") (fun () ->
      ignore (Core.Adaptive.threshold x (-1)))

let test_abku_choose_is_prefix_max () =
  let g = rng () in
  let loads = [| 5; 4; 3; 2; 1 |] in
  for d = 1 to 4 do
    let p = Core.Probe.create g ~n:5 in
    let rank, probes = Sr.choose_rank (Sr.abku d) ~loads ~probe:p in
    Alcotest.(check int) "probes" d probes;
    Alcotest.(check int) "rank = prefix max" (Core.Probe.prefix_max p (d - 1)) rank
  done

let test_adap_const_equals_abku_choice () =
  (* ADAP with constant threshold d makes exactly the ABKU[d] choice when
     fed the same probe sequence. *)
  let loads = [| 9; 7; 7; 4; 2; 2; 0; 0 |] in
  for seed = 0 to 30 do
    let g1 = rng ~seed () and g2 = rng ~seed () in
    let p1 = Core.Probe.create g1 ~n:8 and p2 = Core.Probe.create g2 ~n:8 in
    let r1, _ = Sr.choose_rank (Sr.abku 3) ~loads ~probe:p1 in
    let r2, _ =
      Sr.choose_rank (Sr.adap (Core.Adaptive.constant 3)) ~loads ~probe:p2
    in
    Alcotest.(check int) "same choice" r1 r2
  done

let test_adap_stops_early_on_empty () =
  (* Threshold 1 at load 0: if the first probe hits an empty bin, stop. *)
  let x = Core.Adaptive.of_list [ 1; 5 ] in
  let loads = [| 3; 0; 0 |] in
  let g = rng () in
  let found_one_probe = ref false in
  for _ = 1 to 50 do
    let p = Core.Probe.create g ~n:3 in
    let rank, probes = Sr.choose_rank (Sr.adap x) ~loads ~probe:p in
    if Core.Probe.get p 0 >= 1 then begin
      Alcotest.(check int) "stops at once" 1 probes;
      Alcotest.(check int) "keeps first probe" (Core.Probe.get p 0) rank;
      found_one_probe := true
    end
  done;
  Alcotest.(check bool) "case exercised" true !found_one_probe

let dist_sums_to_one name dist =
  let s = Array.fold_left ( +. ) 0. dist in
  if Float.abs (s -. 1.) > 1e-9 then Alcotest.failf "%s: sums to %f" name s;
  Array.iter (fun p -> if p < -1e-12 then Alcotest.failf "%s: negative" name) dist

let test_abku_rank_distribution_closed_form () =
  let loads = [| 4; 3; 2; 1 |] in
  let dist = Sr.rank_distribution (Sr.abku 2) ~loads in
  dist_sums_to_one "abku2" dist;
  let n = 4. in
  Array.iteri
    (fun j p ->
      let expected =
        ((float_of_int (j + 1) /. n) ** 2.) -. ((float_of_int j /. n) ** 2.)
      in
      if Float.abs (p -. expected) > 1e-12 then
        Alcotest.failf "rank %d: %f vs %f" j p expected)
    dist

let test_adap_rank_distribution_matches_abku () =
  (* ADAP(const d) must produce exactly the ABKU[d] distribution. *)
  let loads = [| 6; 5; 5; 3; 1; 0 |] in
  for d = 1 to 4 do
    let a = Sr.rank_distribution (Sr.abku d) ~loads in
    let b =
      Sr.rank_distribution (Sr.adap (Core.Adaptive.constant d)) ~loads
    in
    Array.iteri
      (fun j pa ->
        if Float.abs (pa -. b.(j)) > 1e-9 then
          Alcotest.failf "d=%d rank %d: %f vs %f" d j pa b.(j))
      a
  done

let test_adap_rank_distribution_monte_carlo () =
  let x = Core.Adaptive.of_list [ 1; 2; 3 ] in
  let loads = [| 3; 2; 1; 0 |] in
  let exact = Sr.rank_distribution (Sr.adap x) ~loads in
  dist_sums_to_one "adap" exact;
  let g = rng () in
  let counts = Array.make 4 0 in
  let reps = 60_000 in
  for _ = 1 to reps do
    let p = Core.Probe.create g ~n:4 in
    let rank, _ = Sr.choose_rank (Sr.adap x) ~loads ~probe:p in
    counts.(rank) <- counts.(rank) + 1
  done;
  Array.iteri
    (fun j c ->
      let frac = float_of_int c /. float_of_int reps in
      if Float.abs (frac -. exact.(j)) > 0.015 then
        Alcotest.failf "rank %d: MC %f vs exact %f" j frac exact.(j))
    counts

let test_expected_probes () =
  let loads = [| 2; 1; 0 |] in
  Alcotest.(check (float 1e-9)) "abku const" 3.
    (Sr.expected_probes (Sr.abku 3) ~loads);
  let x = Core.Adaptive.of_list [ 1; 2 ] in
  let e = Sr.expected_probes (Sr.adap x) ~loads in
  Alcotest.(check bool) "at least one probe" true (e >= 1.);
  (* Threshold 1 everywhere means exactly one probe. *)
  Alcotest.(check (float 1e-9)) "always-stop" 1.
    (Sr.expected_probes (Sr.adap (Core.Adaptive.constant 1)) ~loads)

let test_scenario_removal_distribution () =
  let loads = [| 3; 1; 0 |] in
  let da = Core.Scenario.removal_distribution Core.Scenario.A ~loads in
  dist_sums_to_one "A" da;
  Alcotest.(check (float 1e-12)) "A rank0" 0.75 da.(0);
  Alcotest.(check (float 1e-12)) "A rank2" 0. da.(2);
  let db = Core.Scenario.removal_distribution Core.Scenario.B ~loads in
  dist_sums_to_one "B" db;
  Alcotest.(check (float 1e-12)) "B rank0" 0.5 db.(0);
  Alcotest.(check (float 1e-12)) "B rank1" 0.5 db.(1);
  Alcotest.(check (float 1e-12)) "B rank2" 0. db.(2)

let test_scenario_remove_rank_inverse_cdf () =
  let v = Mv.of_load_vector (Lv.of_array [| 3; 1; 0 |]) in
  (* Scenario A: CDF thresholds at 3/4. *)
  Alcotest.(check int) "A low" 0 (Core.Scenario.remove_rank Core.Scenario.A v ~u:0.0);
  Alcotest.(check int) "A mid" 0 (Core.Scenario.remove_rank Core.Scenario.A v ~u:0.74);
  Alcotest.(check int) "A high" 1 (Core.Scenario.remove_rank Core.Scenario.A v ~u:0.76);
  (* Scenario B: support 2, uniform. *)
  Alcotest.(check int) "B low" 0 (Core.Scenario.remove_rank Core.Scenario.B v ~u:0.49);
  Alcotest.(check int) "B high" 1 (Core.Scenario.remove_rank Core.Scenario.B v ~u:0.51)

let test_scenario_remove_rank_matches_distribution () =
  (* The inverse-CDF map applied to uniform u reproduces the removal law. *)
  let g = rng () in
  List.iter
    (fun sc ->
      let lv = Lv.of_array [| 4; 2; 2; 0 |] in
      let loads = Lv.to_array lv in
      let dist = Core.Scenario.removal_distribution sc ~loads in
      let counts = Array.make 4 0 in
      let reps = 40_000 in
      let v = Mv.of_load_vector lv in
      for _ = 1 to reps do
        let r = Core.Scenario.remove_rank sc v ~u:(Prng.Rng.float g) in
        counts.(r) <- counts.(r) + 1
      done;
      Array.iteri
        (fun i c ->
          let frac = float_of_int c /. float_of_int reps in
          if Float.abs (frac -. dist.(i)) > 0.015 then
            Alcotest.failf "scenario %s rank %d: %f vs %f"
              (Core.Scenario.name sc) i frac dist.(i))
        counts)
    [ Core.Scenario.A; Core.Scenario.B ]

let test_rule_names () =
  Alcotest.(check string) "abku" "ABKU[2]" (Sr.name (Sr.abku 2));
  let x = Core.Adaptive.constant 2 in
  Alcotest.(check string) "adap" "ADAP(const2)" (Sr.name (Sr.adap x))

let qcheck_rank_distribution_sums_to_one =
  QCheck.Test.make ~name:"rank_distribution sums to 1" ~count:200
    QCheck.(
      triple (int_range 1 8)
        (list_of_size (Gen.int_range 1 6) (int_range 0 6))
        (int_range 1 4))
    (fun (n, loads, d) ->
      QCheck.assume (List.length loads <= n);
      let lv = Lv.of_loads ~n loads in
      let loads = Lv.to_array lv in
      let check rule =
        let dist = Sr.rank_distribution rule ~loads in
        Float.abs (Array.fold_left ( +. ) 0. dist -. 1.) < 1e-9
      in
      check (Sr.abku d)
      && check (Sr.adap (Core.Adaptive.of_list [ 1; d; d + 1 ])))

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("probe memoized", test_probe_memoized);
      ("probe prefix max", test_probe_prefix_max);
      ("probe range", test_probe_range);
      ("probe invalid", test_probe_invalid);
      ("adaptive constant", test_adaptive_constant);
      ("adaptive of_list", test_adaptive_of_list);
      ("adaptive linear/doubling", test_adaptive_linear_doubling);
      ("ABKU choose = prefix max", test_abku_choose_is_prefix_max);
      ("ADAP(const d) = ABKU[d] choice", test_adap_const_equals_abku_choice);
      ("ADAP stops early on empty", test_adap_stops_early_on_empty);
      ("ABKU rank distribution closed form", test_abku_rank_distribution_closed_form);
      ("ADAP(const) distribution = ABKU", test_adap_rank_distribution_matches_abku);
      ("ADAP distribution vs Monte Carlo", test_adap_rank_distribution_monte_carlo);
      ("expected probes", test_expected_probes);
      ("scenario removal distributions", test_scenario_removal_distribution);
      ("remove_rank inverse CDF", test_scenario_remove_rank_inverse_cdf);
      ("remove_rank matches law", test_scenario_remove_rank_matches_distribution);
      ("rule names", test_rule_names);
    ]
  @ List.map QCheck_alcotest.to_alcotest [ qcheck_rank_distribution_sums_to_one ]
