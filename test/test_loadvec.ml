(* Tests for the load-vector calculus of Section 3.1. *)

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector
module Cv = Loadvec.Count_vector

(* Reference implementation of oplus/ominus: mutate then fully re-sort. *)
let ref_oplus v i =
  let a = Lv.to_array v in
  a.(i) <- a.(i) + 1;
  Lv.of_array a

let ref_ominus v i =
  let a = Lv.to_array v in
  a.(i) <- a.(i) - 1;
  Lv.of_array a

let test_of_array_sorts () =
  let v = Lv.of_array [| 1; 5; 3 |] in
  Alcotest.(check (array int)) "sorted" [| 5; 3; 1 |] (Lv.to_array v)

let test_of_array_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Load_vector.of_array: empty")
    (fun () -> ignore (Lv.of_array [||]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Load_vector.of_array: negative load") (fun () ->
      ignore (Lv.of_array [| 1; -1 |]))

let test_of_loads () =
  let v = Lv.of_loads ~n:4 [ 2; 1 ] in
  Alcotest.(check (array int)) "padded" [| 2; 1; 0; 0 |] (Lv.to_array v);
  Alcotest.check_raises "too many"
    (Invalid_argument "Load_vector.of_loads: more loads than bins") (fun () ->
      ignore (Lv.of_loads ~n:1 [ 1; 1 ]))

let test_uniform () =
  Alcotest.(check (array int)) "even" [| 2; 2; 2 |]
    (Lv.to_array (Lv.uniform ~n:3 ~m:6));
  Alcotest.(check (array int)) "remainder" [| 3; 2; 2 |]
    (Lv.to_array (Lv.uniform ~n:3 ~m:7))

let test_all_in_one () =
  Alcotest.(check (array int)) "spike" [| 5; 0; 0 |]
    (Lv.to_array (Lv.all_in_one ~n:3 ~m:5))

let test_accessors () =
  let v = Lv.of_array [| 4; 2; 2; 0 |] in
  Alcotest.(check int) "dim" 4 (Lv.dim v);
  Alcotest.(check int) "total" 8 (Lv.total v);
  Alcotest.(check int) "max" 4 (Lv.max_load v);
  Alcotest.(check int) "min" 0 (Lv.min_load v);
  Alcotest.(check int) "support" 3 (Lv.support v);
  Alcotest.(check int) "get 1" 2 (Lv.get v 1)

let test_first_last_equal () =
  let v = Lv.of_array [| 4; 2; 2; 2; 1 |] in
  Alcotest.(check int) "first of class 2" 1 (Lv.first_equal v 2);
  Alcotest.(check int) "last of class 2" 3 (Lv.last_equal v 2);
  Alcotest.(check int) "singleton first" 0 (Lv.first_equal v 0);
  Alcotest.(check int) "singleton last" 0 (Lv.last_equal v 0)

let test_fact32 () =
  (* Fact 3.2 worked example: incrementing any rank of an equal-load class
     is realised at the first rank; decrementing at the last. *)
  let v = Lv.of_array [| 3; 2; 2; 2; 1 |] in
  Alcotest.(check (array int)) "oplus mid-class" [| 3; 3; 2; 2; 1 |]
    (Lv.to_array (Lv.oplus v 2));
  Alcotest.(check (array int)) "ominus mid-class" [| 3; 2; 2; 1; 1 |]
    (Lv.to_array (Lv.ominus v 2))

let test_ominus_empty_bin () =
  let v = Lv.of_array [| 2; 0 |] in
  Alcotest.check_raises "empty bin"
    (Invalid_argument "Load_vector.ominus: empty bin") (fun () ->
      ignore (Lv.ominus v 1))

let test_delta () =
  let v = Lv.of_array [| 3; 1; 0 |] and u = Lv.of_array [| 2; 1; 1 |] in
  Alcotest.(check int) "delta" 1 (Lv.delta v u);
  Alcotest.(check int) "l1" 2 (Lv.l1_distance v u);
  Alcotest.(check int) "self" 0 (Lv.delta v v)

let test_delta_mismatch () =
  let v = Lv.of_array [| 1; 1 |] and u = Lv.of_array [| 3; 0 |] in
  Alcotest.check_raises "total mismatch"
    (Invalid_argument "Load_vector.delta: total mismatch") (fun () ->
      ignore (Lv.delta v u))

let test_counts_by_load () =
  let v = Lv.of_array [| 3; 3; 1; 0; 0 |] in
  Alcotest.(check (list (pair int int))) "classes" [ (3, 2); (1, 1); (0, 2) ]
    (Lv.counts_by_load v)

let test_is_normalized () =
  Alcotest.(check bool) "yes" true (Lv.is_normalized [| 3; 2; 2 |]);
  Alcotest.(check bool) "no" false (Lv.is_normalized [| 2; 3 |]);
  Alcotest.(check bool) "negative" false (Lv.is_normalized [| 1; -1 |]);
  Alcotest.(check bool) "empty" false (Lv.is_normalized [||])

let random_vector g ~n ~m =
  let a = Array.make n 0 in
  for _ = 1 to m do
    let i = Prng.Rng.int g n in
    a.(i) <- a.(i) + 1
  done;
  Lv.of_array a

let qcheck_oplus_matches_reference =
  QCheck.Test.make ~name:"oplus = add-then-normalize" ~count:500
    QCheck.(triple small_int (int_range 1 10) (int_range 0 30))
    (fun (seed, n, m) ->
      let g = Prng.Rng.create ~seed () in
      let v = random_vector g ~n ~m in
      let i = Prng.Rng.int g n in
      Lv.equal (Lv.oplus v i) (ref_oplus v i))

let qcheck_ominus_matches_reference =
  QCheck.Test.make ~name:"ominus = sub-then-normalize" ~count:500
    QCheck.(triple small_int (int_range 1 10) (int_range 1 30))
    (fun (seed, n, m) ->
      let g = Prng.Rng.create ~seed () in
      let v = random_vector g ~n ~m in
      let s = Lv.support v in
      QCheck.assume (s > 0);
      let i = Prng.Rng.int g s in
      Lv.equal (Lv.ominus v i) (ref_ominus v i))

let qcheck_delta_metric =
  QCheck.Test.make ~name:"delta is a metric (symmetry, triangle)" ~count:300
    QCheck.(quad small_int (int_range 1 8) (int_range 0 20) unit)
    (fun (seed, n, m, ()) ->
      let g = Prng.Rng.create ~seed () in
      let v = random_vector g ~n ~m in
      let u = random_vector g ~n ~m in
      let w = random_vector g ~n ~m in
      Lv.delta v u = Lv.delta u v
      && Lv.delta v w <= Lv.delta v u + Lv.delta u w
      && (Lv.delta v u = 0) = Lv.equal v u)

let qcheck_mutable_matches_immutable =
  QCheck.Test.make ~name:"mutable ops track immutable ops" ~count:300
    QCheck.(triple small_int (int_range 1 8) (int_range 2 25))
    (fun (seed, n, m) ->
      let g = Prng.Rng.create ~seed () in
      let v0 = random_vector g ~n ~m in
      let mv = Mv.of_load_vector v0 in
      let iv = ref v0 in
      let ok = ref true in
      for _ = 1 to 30 do
        if Prng.Rng.bool g && Lv.support !iv > 0 then begin
          let i = Prng.Rng.int g (Lv.support !iv) in
          ignore (Mv.decr_at mv i);
          iv := Lv.ominus !iv i
        end
        else begin
          let i = Prng.Rng.int g n in
          ignore (Mv.incr_at mv i);
          iv := Lv.oplus !iv i
        end;
        if not (Lv.equal (Mv.to_load_vector mv) !iv) then ok := false;
        if Mv.support mv <> Lv.support !iv then ok := false;
        if Mv.total mv <> Lv.total !iv then ok := false
      done;
      !ok)

let test_mutable_basics () =
  let mv = Mv.of_load_vector (Lv.of_array [| 2; 1; 0 |]) in
  Alcotest.(check int) "dim" 3 (Mv.dim mv);
  Alcotest.(check int) "total" 3 (Mv.total mv);
  Alcotest.(check int) "support" 2 (Mv.support mv);
  Alcotest.(check int) "max" 2 (Mv.max_load mv);
  Alcotest.(check int) "min" 0 (Mv.min_load mv);
  let j = Mv.incr_at mv 2 in
  Alcotest.(check int) "incr rank" 2 j;
  Alcotest.(check int) "support grew" 3 (Mv.support mv);
  let s = Mv.decr_at mv 0 in
  Alcotest.(check int) "decr rank" 0 s;
  Alcotest.(check int) "total back" 3 (Mv.total mv)

let test_mutable_copy_independent () =
  let a = Mv.of_load_vector (Lv.of_array [| 2; 1 |]) in
  let b = Mv.copy a in
  ignore (Mv.incr_at a 0);
  Alcotest.(check bool) "copy unchanged" false (Mv.equal a b)

let test_mutable_decr_empty () =
  let mv = Mv.of_load_vector (Lv.of_array [| 1; 0 |]) in
  Alcotest.check_raises "decr empty"
    (Invalid_argument "Mutable_vector.decr_at: empty bin") (fun () ->
      ignore (Mv.decr_at mv 1))

(* {2 Count-vector backend} *)

let test_counts_basics () =
  let cv = Cv.of_load_vector (Lv.of_array [| 3; 3; 1; 0 |]) in
  Alcotest.(check int) "dim" 4 (Cv.dim cv);
  Alcotest.(check int) "total" 7 (Cv.total cv);
  Alcotest.(check int) "support" 3 (Cv.support cv);
  Alcotest.(check int) "max" 3 (Cv.max_load cv);
  Alcotest.(check int) "min" 0 (Cv.min_load cv);
  Alcotest.(check int) "count 3" 2 (Cv.count cv 3);
  Alcotest.(check int) "count 2" 0 (Cv.count cv 2);
  Alcotest.(check int) "count above max" 0 (Cv.count cv 9);
  Alcotest.(check (array int)) "round trip" [| 3; 3; 1; 0 |]
    (Lv.to_array (Cv.to_load_vector cv))

let test_counts_level_of_rank () =
  let cv = Cv.of_load_vector (Lv.of_array [| 3; 3; 1; 0; 0 |]) in
  Alcotest.(check int) "rank 0" 3 (Cv.level_of_rank cv 0);
  Alcotest.(check int) "rank 1" 3 (Cv.level_of_rank cv 1);
  Alcotest.(check int) "rank 2" 1 (Cv.level_of_rank cv 2);
  Alcotest.(check int) "rank 4" 0 (Cv.level_of_rank cv 4);
  Alcotest.check_raises "bad rank"
    (Invalid_argument "Count_vector.level_of_rank") (fun () ->
      ignore (Cv.level_of_rank cv 5))

let test_counts_shifts () =
  let cv = Cv.of_load_vector (Lv.of_array [| 2; 1; 0 |]) in
  Cv.shift_down cv 2;
  Alcotest.(check (array int)) "after shift_down" [| 1; 1; 0 |]
    (Lv.to_array (Cv.to_load_vector cv));
  Cv.shift_up cv 1;
  Alcotest.(check (array int)) "after shift_up" [| 2; 1; 0 |]
    (Lv.to_array (Cv.to_load_vector cv));
  Alcotest.(check int) "max maintained" 2 (Cv.max_load cv);
  Alcotest.check_raises "shift_down empty level"
    (Invalid_argument "Count_vector.shift_down: no bin at level") (fun () ->
      Cv.shift_down cv 9)

(* One ejection round (every non-empty bin loses a ball), on both
   mutable representations: same resulting multiset, same count of
   ejected balls, totals maintained. *)
let test_eject_all () =
  let check_pair loads expect_q expect_after =
    let v = Lv.of_array loads in
    let mv = Mv.of_load_vector v in
    let cv = Cv.of_load_vector v in
    Alcotest.(check int) "mv ejected count" expect_q (Mv.eject_all mv);
    Alcotest.(check int) "cv ejected count" expect_q (Cv.eject_all cv);
    Alcotest.(check (array int)) "mv after ejection" expect_after
      (Lv.to_array (Mv.to_load_vector mv));
    Alcotest.(check (array int)) "cv after ejection" expect_after
      (Lv.to_array (Cv.to_load_vector cv));
    Alcotest.(check int) "mv total" (Lv.total v - expect_q) (Mv.total mv);
    Alcotest.(check int) "cv total" (Lv.total v - expect_q) (Cv.total cv)
  in
  check_pair [| 3; 2; 1; 0 |] 3 [| 2; 1; 0; 0 |];
  check_pair [| 1; 1; 1 |] 3 [| 0; 0; 0 |];
  check_pair [| 0; 0 |] 0 [| 0; 0 |];
  check_pair [| 5 |] 1 [| 4 |]

let test_counts_copy_independent () =
  let a = Cv.of_load_vector (Lv.of_array [| 2; 1 |]) in
  let b = Cv.copy a in
  Cv.shift_up a 1;
  Alcotest.(check bool) "copy unchanged" false (Cv.equal a b)

(* The count vector mirrors the mutable vector under the elementary
   moves of the processes: decrement at a class, increment at a class. *)
let qcheck_counts_track_mutable =
  QCheck.Test.make ~name:"count vector tracks mutable vector" ~count:300
    QCheck.(triple small_int (int_range 1 8) (int_range 2 25))
    (fun (seed, n, m) ->
      let g = Prng.Rng.create ~seed () in
      let v0 = random_vector g ~n ~m in
      let mv = Mv.of_load_vector v0 in
      let cv = Cv.of_load_vector v0 in
      let ok = ref true in
      for _ = 1 to 40 do
        (if Prng.Rng.bool g && Mv.support mv > 0 then begin
           let i = Prng.Rng.int g (Mv.support mv) in
           let level = Mv.get mv i in
           ignore (Mv.decr_at mv i);
           Cv.shift_down cv level
         end
         else begin
           let i = Prng.Rng.int g n in
           let level = Mv.get mv i in
           ignore (Mv.incr_at mv i);
           Cv.shift_up cv level
         end);
        if not (Lv.equal (Mv.to_load_vector mv) (Cv.to_load_vector cv)) then
          ok := false;
        if Cv.support cv <> Mv.support mv then ok := false;
        if Cv.total cv <> Mv.total mv then ok := false;
        if Cv.max_load cv <> Mv.max_load mv then ok := false
      done;
      !ok)

(* level_of_ball replays the scenario-A prefix scan exactly: compare
   against the rank-by-rank reference on the expanded array. *)
let qcheck_counts_level_of_ball =
  QCheck.Test.make ~name:"level_of_ball = rank scan's level" ~count:500
    QCheck.(quad small_int (int_range 1 8) (int_range 1 25) (float_range 0. 1.))
    (fun (seed, n, m, u) ->
      let u = if u >= 1. then 0.9999999 else u in
      let g = Prng.Rng.create ~seed () in
      let v = random_vector g ~n ~m in
      let cv = Cv.of_load_vector v in
      let loads = Lv.to_array v in
      let target = u *. float_of_int m in
      let rec scan i acc =
        if i = n - 1 then i
        else
          let acc = acc + loads.(i) in
          if target < float_of_int acc then i else scan (i + 1) acc
      in
      let rank = scan 0 0 in
      loads.(rank) = Cv.level_of_ball cv ~target)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("of_array sorts", test_of_array_sorts);
      ("of_array invalid", test_of_array_invalid);
      ("of_loads", test_of_loads);
      ("uniform", test_uniform);
      ("all_in_one", test_all_in_one);
      ("accessors", test_accessors);
      ("first/last equal", test_first_last_equal);
      ("Fact 3.2", test_fact32);
      ("ominus empty bin", test_ominus_empty_bin);
      ("delta", test_delta);
      ("delta mismatch", test_delta_mismatch);
      ("counts_by_load", test_counts_by_load);
      ("is_normalized", test_is_normalized);
      ("mutable basics", test_mutable_basics);
      ("mutable copy independent", test_mutable_copy_independent);
      ("mutable decr empty", test_mutable_decr_empty);
      ("counts basics", test_counts_basics);
      ("counts level_of_rank", test_counts_level_of_rank);
      ("counts shifts", test_counts_shifts);
      ("eject_all on both mutable representations", test_eject_all);
      ("counts copy independent", test_counts_copy_independent);
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        qcheck_oplus_matches_reference;
        qcheck_ominus_matches_reference;
        qcheck_delta_metric;
        qcheck_mutable_matches_immutable;
        qcheck_counts_track_mutable;
        qcheck_counts_level_of_ball;
      ]
