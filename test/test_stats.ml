(* Tests for the statistics substrate. *)

let feq ?(tol = 1e-9) a b = Float.abs (a -. b) <= tol

let check_float ?tol name expected got =
  if not (feq ?tol expected got) then
    Alcotest.failf "%s: expected %.12g, got %.12g" name expected got

let summary_of xs =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) xs;
  s

let test_summary_basic () =
  let s = summary_of [ 1.; 2.; 3.; 4. ] in
  Alcotest.(check int) "count" 4 (Stats.Summary.count s);
  check_float "mean" 2.5 (Stats.Summary.mean s);
  check_float "variance" (5. /. 3.) (Stats.Summary.variance s);
  check_float "min" 1. (Stats.Summary.min s);
  check_float "max" 4. (Stats.Summary.max s);
  check_float "sum" 10. (Stats.Summary.sum s)

let test_summary_empty () =
  let s = Stats.Summary.create () in
  Alcotest.(check bool) "mean nan" true (Float.is_nan (Stats.Summary.mean s));
  Alcotest.(check bool) "variance nan" true
    (Float.is_nan (Stats.Summary.variance s))

let test_summary_single () =
  let s = summary_of [ 7. ] in
  check_float "mean" 7. (Stats.Summary.mean s);
  Alcotest.(check bool) "variance nan" true
    (Float.is_nan (Stats.Summary.variance s))

let test_summary_merge () =
  let a = summary_of [ 1.; 2.; 3. ] and b = summary_of [ 10.; 20. ] in
  let m = Stats.Summary.merge a b in
  let whole = summary_of [ 1.; 2.; 3.; 10.; 20. ] in
  Alcotest.(check int) "count" (Stats.Summary.count whole) (Stats.Summary.count m);
  check_float ~tol:1e-9 "mean" (Stats.Summary.mean whole) (Stats.Summary.mean m);
  check_float ~tol:1e-9 "variance" (Stats.Summary.variance whole)
    (Stats.Summary.variance m);
  check_float "min" 1. (Stats.Summary.min m);
  check_float "max" 20. (Stats.Summary.max m)

let test_summary_merge_empty () =
  let a = summary_of [ 1.; 2. ] and e = Stats.Summary.create () in
  let m = Stats.Summary.merge a e in
  check_float "mean unchanged" 1.5 (Stats.Summary.mean m);
  let m' = Stats.Summary.merge e a in
  check_float "mean unchanged (flip)" 1.5 (Stats.Summary.mean m')

let test_quantile_known () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "q0" 1. (Stats.Quantile.quantile xs 0.);
  check_float "q1" 4. (Stats.Quantile.quantile xs 1.);
  check_float "median" 2.5 (Stats.Quantile.median xs);
  check_float "q25" 1.75 (Stats.Quantile.quantile xs 0.25);
  check_float "iqr" 1.5 (Stats.Quantile.iqr xs)

let test_quantile_unsorted_input () =
  let xs = [| 3.; 1.; 2. |] in
  check_float "median of unsorted" 2. (Stats.Quantile.median xs);
  Alcotest.(check (array (float 0.))) "input untouched" [| 3.; 1.; 2. |] xs

let test_quantile_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Quantile.quantile: empty sample")
    (fun () -> ignore (Stats.Quantile.quantile [||] 0.5));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Quantile.quantile: q not in [0,1]") (fun () ->
      ignore (Stats.Quantile.quantile [| 1. |] 1.5))

let test_histogram () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add h) [ 0; 1; 1; 3; 3; 3 ];
  Alcotest.(check int) "count 1" 2 (Stats.Histogram.count h 1);
  Alcotest.(check int) "count 2" 0 (Stats.Histogram.count h 2);
  Alcotest.(check int) "count 3" 3 (Stats.Histogram.count h 3);
  Alcotest.(check int) "total" 6 (Stats.Histogram.total h);
  Alcotest.(check int) "max value" 3 (Stats.Histogram.max_value h);
  check_float "mean" (11. /. 6.) (Stats.Histogram.mean h);
  check_float "frac >= 3" 0.5 (Stats.Histogram.fraction_at_least h 3);
  check_float "frac >= 0" 1. (Stats.Histogram.fraction_at_least h 0);
  Alcotest.(check (array int)) "to_array" [| 1; 2; 0; 3 |]
    (Stats.Histogram.to_array h)

let test_histogram_growth () =
  let h = Stats.Histogram.create () in
  Stats.Histogram.add h 1000;
  Alcotest.(check int) "large value" 1 (Stats.Histogram.count h 1000);
  Alcotest.check_raises "negative" (Invalid_argument "Histogram.add: negative value")
    (fun () -> Stats.Histogram.add h (-1))

let test_histogram_pp () =
  let h = Stats.Histogram.create () in
  List.iter (Stats.Histogram.add h) [ 0; 1; 1 ];
  let rendered = Format.asprintf "%a" Stats.Histogram.pp h in
  Alcotest.(check bool) "mentions both values" true
    (String.length rendered > 0
    && String.split_on_char '\n' rendered |> List.length >= 2);
  let empty = Format.asprintf "%a" Stats.Histogram.pp (Stats.Histogram.create ()) in
  Alcotest.(check string) "empty marker" "(empty histogram)" empty

let test_ols_exact_line () =
  let pts = Array.init 10 (fun i ->
      let x = float_of_int i in
      (x, 3. +. (2. *. x)))
  in
  let fit = Stats.Regression.ols pts in
  check_float ~tol:1e-9 "slope" 2. fit.Stats.Regression.slope;
  check_float ~tol:1e-9 "intercept" 3. fit.Stats.Regression.intercept;
  check_float ~tol:1e-9 "r2" 1. fit.Stats.Regression.r_squared

let test_power_law_exact () =
  let pts = Array.init 8 (fun i ->
      let x = float_of_int (i + 2) in
      (x, 5. *. (x ** 1.7)))
  in
  let fit = Stats.Regression.power_law pts in
  check_float ~tol:1e-9 "exponent" 1.7 fit.Stats.Regression.slope;
  check_float ~tol:1e-6 "log c" (log 5.) fit.Stats.Regression.intercept

let test_log_corrected_power_law () =
  (* y = x ln x should fit exponent 1 after dividing by ln x. *)
  let pts = Array.init 8 (fun i ->
      let x = float_of_int (10 * (i + 1)) in
      (x, x *. log x))
  in
  let fit = Stats.Regression.log_corrected_power_law ~log_exponent:1. pts in
  check_float ~tol:1e-9 "exponent" 1. fit.Stats.Regression.slope

let test_regression_invalid () =
  Alcotest.check_raises "one point"
    (Invalid_argument "Regression.ols: need at least two points") (fun () ->
      ignore (Stats.Regression.ols [| (1., 1.) |]));
  Alcotest.check_raises "zero variance"
    (Invalid_argument "Regression.ols: zero variance in x") (fun () ->
      ignore (Stats.Regression.ols [| (1., 1.); (1., 2.) |]));
  Alcotest.check_raises "negative coordinate"
    (Invalid_argument "Regression.power_law: coordinates must be positive")
    (fun () -> ignore (Stats.Regression.power_law [| (1., 1.); (-1., 2.) |]))

let test_bootstrap_constant () =
  let rng = Prng.Rng.create ~seed:7 () in
  let xs = Array.make 30 5. in
  let lo, hi = Stats.Bootstrap.ci_median ~rng xs in
  check_float "lo" 5. lo;
  check_float "hi" 5. hi

let test_bootstrap_contains_truth () =
  let rng = Prng.Rng.create ~seed:7 () in
  let xs = Array.init 200 (fun i -> float_of_int (i mod 10)) in
  let lo, hi = Stats.Bootstrap.ci_mean ~rng xs in
  Alcotest.(check bool) "mean in CI" true (lo <= 4.5 && 4.5 <= hi);
  Alcotest.(check bool) "tight-ish" true (hi -. lo < 1.5)

let test_bootstrap_invalid () =
  let rng = Prng.Rng.create ~seed:7 () in
  Alcotest.check_raises "empty" (Invalid_argument "Bootstrap.ci: empty sample")
    (fun () -> ignore (Stats.Bootstrap.ci_median ~rng [||]))

let test_table () =
  let t = Stats.Table.create ~title:"T" ~columns:[ "a"; "bb" ] in
  Stats.Table.add_row t [ "1"; "2" ];
  Stats.Table.add_note t "a note";
  let buf = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer buf in
  Stats.Table.pp fmt t;
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  Alcotest.(check bool) "has title" true
    (String.length s > 0 && String.index_opt s 'T' <> None);
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Stats.Table.add_row t [ "only one" ])

let test_table_csv () =
  let t = Stats.Table.create ~title:"T" ~columns:[ "a"; "b" ] in
  Stats.Table.add_row t [ "1,5"; "say \"hi\"" ];
  Stats.Table.add_row t [ "2"; "plain" ];
  Alcotest.(check string) "escaped"
    "a,b\n\"1,5\",\"say \"\"hi\"\"\"\n2,plain\n"
    (Stats.Table.to_csv t);
  Alcotest.(check string) "title accessor" "T" (Stats.Table.title t)

(* Minimal RFC 4180 parser (LF-separated records, double-quote escaping)
   for the round-trip tests below. *)
let parse_csv s =
  let records = ref [] in
  let fields = ref [] in
  let buf = Buffer.create 16 in
  let n = String.length s in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_record () =
    flush_field ();
    records := List.rev !fields :: !records;
    fields := []
  in
  let i = ref 0 in
  while !i < n do
    match s.[!i] with
    | '"' ->
        incr i;
        let closed = ref false in
        while not !closed do
          if !i >= n then failwith "parse_csv: unterminated quote";
          if s.[!i] = '"' then
            if !i + 1 < n && s.[!i + 1] = '"' then begin
              Buffer.add_char buf '"';
              i := !i + 2
            end
            else begin
              closed := true;
              incr i
            end
          else begin
            Buffer.add_char buf s.[!i];
            incr i
          end
        done
    | ',' ->
        flush_field ();
        incr i
    | '\n' ->
        flush_record ();
        incr i
    | c ->
        Buffer.add_char buf c;
        incr i
  done;
  if Buffer.length buf > 0 || !fields <> [] then flush_record ();
  List.rev !records

let test_table_csv_roundtrip () =
  let rows =
    [
      [ "a,b"; "say \"hi\""; "line1\nline2" ];
      [ "cr\rcell"; ",\",\n"; "plain" ];
      [ ""; "\"\""; "trailing," ];
    ]
  in
  let t = Stats.Table.create ~title:"RT" ~columns:[ "x"; "y"; "z" ] in
  List.iter (Stats.Table.add_row t) rows;
  let parsed = parse_csv (Stats.Table.to_csv t) in
  Alcotest.(check (list (list string)))
    "header + rows survive RFC 4180"
    ([ "x"; "y"; "z" ] :: rows)
    parsed

let test_table_csv_notes () =
  let t = Stats.Table.create ~title:"N" ~columns:[ "a"; "b"; "c"; "d" ] in
  Stats.Table.add_row t [ "1"; "2"; "3"; "4" ];
  let note = "commas, \"quotes\" and\nnewlines" in
  Stats.Table.add_note t note;
  (* Default layout omits notes (historical CSV bytes). *)
  Alcotest.(check (list (list string)))
    "notes omitted by default"
    [ [ "a"; "b"; "c"; "d" ]; [ "1"; "2"; "3"; "4" ] ]
    (parse_csv (Stats.Table.to_csv t));
  (* With ~notes:true each note is a padded trailing record. *)
  Alcotest.(check (list (list string)))
    "note record padded to arity"
    [ [ "a"; "b"; "c"; "d" ]; [ "1"; "2"; "3"; "4" ];
      [ "note"; note; ""; "" ] ]
    (parse_csv (Stats.Table.to_csv ~notes:true t));
  (* Narrow tables must not raise when padding the note record. *)
  let narrow = Stats.Table.create ~title:"N1" ~columns:[ "only" ] in
  Stats.Table.add_note narrow "n";
  Alcotest.(check (list (list string)))
    "one-column note"
    [ [ "only" ]; [ "note"; "n" ] ]
    (parse_csv (Stats.Table.to_csv ~notes:true narrow))

let test_table_accessors () =
  let t = Stats.Table.create ~title:"A" ~columns:[ "c1"; "c2" ] in
  Stats.Table.add_row t [ "r1a"; "r1b" ];
  Stats.Table.add_row t [ "r2a"; "r2b" ];
  Stats.Table.add_note t "first";
  Stats.Table.add_note t "second";
  Alcotest.(check (list string)) "columns" [ "c1"; "c2" ] (Stats.Table.columns t);
  Alcotest.(check (list (list string)))
    "rows in insertion order"
    [ [ "r1a"; "r1b" ]; [ "r2a"; "r2b" ] ]
    (Stats.Table.rows t);
  Alcotest.(check (list string))
    "notes in insertion order" [ "first"; "second" ] (Stats.Table.notes t)

let test_table_cells () =
  Alcotest.(check string) "int" "42" (Stats.Table.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Stats.Table.cell_float 3.14159);
  Alcotest.(check string) "nan" "-" (Stats.Table.cell_float nan);
  Alcotest.(check string) "ci" "[1.00, 2.00]" (Stats.Table.cell_ci (1., 2.))

let qcheck_quantile_monotone =
  QCheck.Test.make ~name:"quantile monotone in q" ~count:300
    QCheck.(
      triple
        (list_of_size (Gen.int_range 1 20) (float_range (-100.) 100.))
        (float_range 0. 1.) (float_range 0. 1.))
    (fun (xs, q1, q2) ->
      let xs = Array.of_list xs in
      let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
      Stats.Quantile.quantile xs lo <= Stats.Quantile.quantile xs hi +. 1e-9)

let qcheck_mean_within_bounds =
  QCheck.Test.make ~name:"summary mean within [min,max]" ~count:300
    QCheck.(list_of_size (Gen.int_range 1 30) (float_range (-50.) 50.))
    (fun xs ->
      let s = summary_of xs in
      let m = Stats.Summary.mean s in
      m >= Stats.Summary.min s -. 1e-9 && m <= Stats.Summary.max s +. 1e-9)

let qcheck_merge_matches_whole =
  QCheck.Test.make ~name:"summary merge = whole-stream summary" ~count:300
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 20) (float_range (-10.) 10.))
        (list_of_size (Gen.int_range 1 20) (float_range (-10.) 10.)))
    (fun (xs, ys) ->
      let m = Stats.Summary.merge (summary_of xs) (summary_of ys) in
      let w = summary_of (xs @ ys) in
      feq ~tol:1e-6 (Stats.Summary.mean m) (Stats.Summary.mean w)
      && (Stats.Summary.count w < 2
         || feq ~tol:1e-6 (Stats.Summary.variance m) (Stats.Summary.variance w)))

(* ---- Special (gamma / chi-square) ---------------------------------- *)

let test_special_log_gamma () =
  let check name expected x =
    Alcotest.(check (float 1e-10)) name expected (Stats.Special.log_gamma x)
  in
  check "ln Gamma(1) = 0" 0. 1.;
  check "ln Gamma(5) = ln 24" (log 24.) 5.;
  check "ln Gamma(0.5) = ln sqrt(pi)" (0.5 *. log Float.pi) 0.5;
  check "ln Gamma(10.5)" 13.940_625_219_403_76 10.5;
  Alcotest.check_raises "nonpositive argument"
    (Invalid_argument "Special.log_gamma: need x > 0") (fun () ->
      ignore (Stats.Special.log_gamma 0.))

let test_special_gamma_inc () =
  (* P(0.5, x) = erf(sqrt x); erf 1 is a standard constant. *)
  Alcotest.(check (float 1e-10))
    "P(0.5, 1) = erf 1" 0.842_700_792_949_714_9
    (Stats.Special.gamma_p ~a:0.5 ~x:1.);
  (* P(1, x) = 1 - e^{-x}, both below and above the a+1 diagonal. *)
  List.iter
    (fun x ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "P(1, %g)" x)
        (1. -. exp (-.x))
        (Stats.Special.gamma_p ~a:1. ~x);
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "P + Q = 1 at %g" x)
        1.
        (Stats.Special.gamma_p ~a:1. ~x +. Stats.Special.gamma_q ~a:1. ~x))
    [ 0.; 0.3; 1.; 5.; 40. ];
  Alcotest.(check (float 1e-12)) "P(a, 0) = 0" 0. (Stats.Special.gamma_p ~a:3. ~x:0.)

let test_special_chi_square () =
  (* df = 2 has the closed form sf(x) = e^{-x/2}. *)
  List.iter
    (fun x ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "df=2 closed form at %g" x)
        (exp (-.x /. 2.))
        (Stats.Special.chi_square_sf ~df:2 x))
    [ 0.; 0.5; 2.; 5.991; 20. ];
  (* Textbook 5% critical values. *)
  Alcotest.(check (float 1e-4)) "df=1" 0.05 (Stats.Special.chi_square_sf ~df:1 3.8415);
  Alcotest.(check (float 1e-4)) "df=5" 0.05 (Stats.Special.chi_square_sf ~df:5 11.0705);
  Alcotest.(check (float 1e-4)) "df=10" 0.05 (Stats.Special.chi_square_sf ~df:10 18.307);
  Alcotest.check_raises "df < 1"
    (Invalid_argument "Special.chi_square_sf: need df >= 1") (fun () ->
      ignore (Stats.Special.chi_square_sf ~df:0 1.))

(* ---- Freq ----------------------------------------------------------- *)

let test_freq_counts () =
  let f = Stats.Freq.create ~size:4 in
  Alcotest.(check int) "empty total" 0 (Stats.Freq.total f);
  Stats.Freq.observe f 1;
  Stats.Freq.observe f 1;
  Stats.Freq.add f 3 2;
  Alcotest.(check int) "total" 4 (Stats.Freq.total f);
  Alcotest.(check (array int)) "counts" [| 0; 2; 0; 2 |] (Stats.Freq.counts f);
  Alcotest.(check (array (float 1e-12)))
    "freqs" [| 0.; 0.5; 0.; 0.5 |] (Stats.Freq.freqs f);
  let g = Stats.Freq.of_values [| 0; 3; 3; 0 |] in
  Stats.Freq.merge_into ~dst:f g;
  Alcotest.(check int) "merged total" 8 (Stats.Freq.total f);
  Alcotest.(check (array int)) "merged counts" [| 2; 2; 0; 4 |] (Stats.Freq.counts f);
  Alcotest.check_raises "bad cell" (Invalid_argument "Freq.observe: bad cell")
    (fun () -> Stats.Freq.observe f 4)

let test_freq_tv () =
  let a = Stats.Freq.of_values [| 0; 0; 1; 1 |] in
  let b = Stats.Freq.of_values [| 0; 0; 0; 0 |] in
  (* a = (1/2, 1/2), b = (1); padded TV = 1/2. *)
  Alcotest.(check (float 1e-12)) "padded tv" 0.5 (Stats.Freq.tv a b);
  Alcotest.(check (float 1e-12)) "tv self" 0. (Stats.Freq.tv a a);
  Alcotest.(check (float 1e-12))
    "tv against exact law" 0.25
    (Stats.Freq.tv_against a [| 0.75; 0.25 |]);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Freq.tv_against: length mismatch") (fun () ->
      ignore (Stats.Freq.tv_against a [| 1. |]))

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("special log_gamma", test_special_log_gamma);
      ("special incomplete gamma", test_special_gamma_inc);
      ("special chi-square sf", test_special_chi_square);
      ("freq counts", test_freq_counts);
      ("freq tv", test_freq_tv);
      ("summary basic", test_summary_basic);
      ("summary empty", test_summary_empty);
      ("summary single", test_summary_single);
      ("summary merge", test_summary_merge);
      ("summary merge empty", test_summary_merge_empty);
      ("quantile known", test_quantile_known);
      ("quantile unsorted input", test_quantile_unsorted_input);
      ("quantile invalid", test_quantile_invalid);
      ("histogram", test_histogram);
      ("histogram growth", test_histogram_growth);
      ("histogram pp", test_histogram_pp);
      ("ols exact line", test_ols_exact_line);
      ("power law exact", test_power_law_exact);
      ("log-corrected power law", test_log_corrected_power_law);
      ("regression invalid", test_regression_invalid);
      ("bootstrap constant", test_bootstrap_constant);
      ("bootstrap contains truth", test_bootstrap_contains_truth);
      ("bootstrap invalid", test_bootstrap_invalid);
      ("table", test_table);
      ("table cells", test_table_cells);
      ("table csv", test_table_csv);
      ("table csv roundtrip", test_table_csv_roundtrip);
      ("table csv notes", test_table_csv_notes);
      ("table accessors", test_table_accessors);
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [ qcheck_quantile_monotone; qcheck_mean_within_bounds;
        qcheck_merge_matches_whole ]
