(* The RBB subsystem's contracts: the one-round law is a probability
   distribution over the partition space and conserves the ball count;
   every backend's round conserves it too; the count-backed round is
   bit-identical to the array oracle; the sampled round is equal in law
   (checked against the exact one-round law on a tiny space); and the
   event vocabulary behaves — normalized sims answer [Round]/[Step] and
   nothing else mutating, the identity-based service machine inserts by
   the placement rule and refuses removal. *)

module Lv = Loadvec.Load_vector

let rng_of seed = Prng.Rng.create ~seed ()
let lv_str v = Format.asprintf "%a" Lv.pp v

let random_vector g ~n ~m =
  let a = Array.make n 0 in
  for _ = 1 to m do
    let i = Prng.Rng.int g n in
    a.(i) <- a.(i) + 1
  done;
  Lv.of_array a

let rule_of_d d = if d = 1 then Rbb.uniform else Rbb.dchoice d

(* {2 Exact one-round law} *)

let test_exact_law () =
  List.iter
    (fun (rule, n, m) ->
      let p = Rbb.make rule ~n in
      Array.iter
        (fun v ->
          let law = Rbb.exact_transitions p v in
          let total = List.fold_left (fun a (_, pr) -> a +. pr) 0. law in
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "law from %s sums to 1" (lv_str v))
            1.0 total;
          List.iter
            (fun (w, pr) ->
              if pr <= 0. then Alcotest.fail "non-positive transition mass";
              Alcotest.(check int) "target conserves m" m (Lv.total w);
              Alcotest.(check bool)
                "target is normalized" true
                (Lv.is_normalized (Lv.to_array w)))
            law)
        (Markov.Partition_space.enumerate ~n ~m))
    [ (Rbb.uniform, 4, 4); (Rbb.dchoice 2, 4, 5); (Rbb.dchoice 3, 3, 7) ]

(* The uniform one-round law coincides with the d-choice law at d = 1
   only syntactically at the type level; semantically Abku 1 IS the
   uniform placement, so the two spellings must produce one law. *)
let test_uniform_is_abku1 () =
  let n = 5 and m = 6 in
  let pu = Rbb.make Rbb.uniform ~n in
  (match Rbb.of_scheduling_rule (Core.Scheduling_rule.abku 1) with
  | Ok r ->
      Alcotest.(check string) "abku 1 round-trips to uniform" "uniform"
        (Rbb.rule_name r)
  | Error e -> Alcotest.fail e);
  Array.iter
    (fun v ->
      let law = Rbb.exact_transitions pu v in
      let total = List.fold_left (fun a (_, pr) -> a +. pr) 0. law in
      Alcotest.(check (float 1e-9)) "uniform law sums to 1" 1.0 total)
    (Markov.Partition_space.enumerate ~n ~m)

(* {2 Backend laws} *)

let qcheck_rounds_conserve =
  QCheck.Test.make ~name:"rbb rounds conserve the ball count on every backend"
    ~count:200
    QCheck.(
      quad small_int (int_range 1 12) (int_range 0 40) (int_range 1 3))
    (fun (seed, n, m, d) ->
      let p = Rbb.make (rule_of_d d) ~n in
      let start = random_vector (rng_of seed) ~n ~m in
      List.for_all
        (fun repr ->
          let g = rng_of (seed + 7) in
          let s = Rbb.sim_repr ~repr p start in
          Engine.Sim.iterate s g 5;
          let v = Engine.Sim.observe s in
          Lv.total v = m && Lv.is_normalized (Lv.to_array v))
        Core.Repr.all)

let qcheck_counts_bit_identical =
  QCheck.Test.make
    ~name:"rbb count-backed rounds are bit-identical to the array oracle"
    ~count:150
    QCheck.(
      quad small_int (int_range 1 12) (int_range 0 40) (int_range 1 3))
    (fun (seed, n, m, d) ->
      let p = Rbb.make (rule_of_d d) ~n in
      let start = random_vector (rng_of seed) ~n ~m in
      let trace repr =
        let g = rng_of (seed + 11) in
        let s = Rbb.sim_repr ~repr p start in
        let probes =
          Array.init 8 (fun _ ->
              Engine.Sim.step s g;
              Engine.Sim.probe s)
        in
        (probes, Engine.Sim.observe s)
      in
      let pa, va = trace Core.Repr.Array_backed in
      let pc, vc = trace Core.Repr.Count_backed in
      pa = pc && Lv.equal va vc)

let qcheck_chain_matches_sim =
  QCheck.Test.make
    ~name:"rbb chain steps agree with the array sim on one stream" ~count:100
    QCheck.(triple small_int (int_range 1 10) (int_range 0 30))
    (fun (seed, n, m) ->
      let p = Rbb.make (Rbb.dchoice 2) ~n in
      let start = random_vector (rng_of seed) ~n ~m in
      let chain = Rbb.chain p in
      let gc = rng_of (seed + 13) and gs = rng_of (seed + 13) in
      let s = Rbb.sim_repr p start in
      let v = ref start in
      let ok = ref true in
      for _ = 1 to 6 do
        v := chain.Markov.Chain.step gc !v;
        Engine.Sim.step s gs;
        ok := !ok && Lv.equal !v (Engine.Sim.observe s)
      done;
      !ok && Lv.total !v = m)

(* The sampled backend redistributes draws, so it is held to equality
   in law: its one-round empirical distribution from a fixed start must
   sit within a small total-variation distance of the exact law. *)
let test_sampled_matches_law () =
  let n = 4 and m = 4 in
  let p = Rbb.make Rbb.uniform ~n in
  let start = Lv.all_in_one ~n ~m in
  let law = Rbb.exact_transitions p start in
  let lawtbl = Hashtbl.create 16 in
  List.iter (fun (w, pr) -> Hashtbl.replace lawtbl w pr) law;
  let reps = 4000 in
  let g = rng_of 0xFACE in
  let counts = Hashtbl.create 16 in
  for _ = 1 to reps do
    let s = Rbb.sim_repr ~repr:Core.Repr.Count_sampled p start in
    Engine.Sim.step s g;
    let v = Engine.Sim.observe s in
    Hashtbl.replace counts v
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  Hashtbl.iter
    (fun v _ ->
      if not (Hashtbl.mem lawtbl v) then
        Alcotest.failf "sampled round reached %s, outside the law's support"
          (lv_str v))
    counts;
  let tv =
    0.5
    *. Hashtbl.fold
         (fun w pr acc ->
           let emp =
             float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts w))
             /. float_of_int reps
           in
           acc +. Float.abs (emp -. pr))
         lawtbl 0.
  in
  if tv > 0.05 then
    Alcotest.failf "sampled one-round TV %.4f exceeds the 0.05 tolerance" tv

(* {2 Event vocabulary} *)

let test_round_event_vocabulary () =
  let n = 6 and m = 9 in
  let p = Rbb.make (Rbb.dchoice 2) ~n in
  let g = rng_of 3 in
  let s = Rbb.sim_repr p (Lv.uniform ~n ~m) in
  (match Engine.Sim.apply s g Engine.Event.Round with
  | Engine.Event.Ack -> ()
  | _ -> Alcotest.fail "Round should Ack on a normalized rbb sim");
  (match Engine.Sim.apply s g Engine.Event.Step with
  | Engine.Event.Ack -> ()
  | _ -> Alcotest.fail "Step should Ack (one round) on a normalized rbb sim");
  (match Engine.Sim.apply s g (Engine.Event.Insert 5) with
  | Engine.Event.Rejected _ -> ()
  | _ -> Alcotest.fail "Insert must be rejected on a normalized rbb sim");
  (match Engine.Sim.apply s g Engine.Event.Remove with
  | Engine.Event.Rejected _ -> ()
  | _ -> Alcotest.fail "Remove must be rejected on a normalized rbb sim");
  match Engine.Sim.apply s g Engine.Event.Probe with
  | Engine.Event.Level l ->
      Alcotest.(check int) "probe is the max load" l
        (Lv.max_load (Engine.Sim.observe s))
  | _ -> Alcotest.fail "Probe should answer Level"

let test_service_machine () =
  let n = 8 in
  let p = Rbb.make Rbb.uniform ~n in
  let bins = Core.Bins.of_loads (Array.make n 2) in
  let s = Rbb.service_sim p bins in
  let g = rng_of 9 in
  (match Engine.Sim.apply s g Engine.Event.Round with
  | Engine.Event.Ack -> ()
  | _ -> Alcotest.fail "Round should Ack on the service machine");
  (match Engine.Sim.apply s g (Engine.Event.Insert 123) with
  | Engine.Event.Placed b ->
      Alcotest.(check bool) "placed bin in range" true (b >= 0 && b < n)
  | _ -> Alcotest.fail "Insert should place by the re-placement rule");
  (match Engine.Sim.apply s g Engine.Event.Remove with
  | Engine.Event.Rejected _ -> ()
  | _ -> Alcotest.fail "Remove must be rejected (rounds conserve balls)");
  match Engine.Sim.apply s g Engine.Event.Occupancy with
  | Engine.Event.Loads loads ->
      Alcotest.(check int) "rounds + one insert conserve the ball count"
        ((2 * n) + 1)
        (Array.fold_left ( + ) 0 loads)
  | _ -> Alcotest.fail "Occupancy should answer Loads"

let test_rule_parsing () =
  List.iter
    (fun (s, expect) ->
      match (Rbb.rule_of_string s, expect) with
      | Ok r, Some name -> Alcotest.(check string) s name (Rbb.rule_name r)
      | Error _, None -> ()
      | Ok r, None ->
          Alcotest.failf "%S should not parse (got %s)" s (Rbb.rule_name r)
      | Error e, Some _ -> Alcotest.failf "%S should parse: %s" s e)
    [
      ("uniform", Some "uniform");
      ("u", Some "uniform");
      ("d2", Some "d2");
      ("d7", Some "d7");
      ("d1", None);
      ("d0", None);
      ("nonsense", None);
    ];
  match
    Rbb.of_scheduling_rule
      (Core.Scheduling_rule.adap (Core.Adaptive.of_list [ 1; 2 ]))
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "ADAP has no round-synchronous form"

let suite =
  [
    Alcotest.test_case "exact one-round law is a distribution" `Quick
      test_exact_law;
    Alcotest.test_case "uniform rule is ABKU[1]" `Quick test_uniform_is_abku1;
    Alcotest.test_case "sampled backend matches the one-round law" `Slow
      test_sampled_matches_law;
    Alcotest.test_case "round event vocabulary" `Quick
      test_round_event_vocabulary;
    Alcotest.test_case "identity service machine" `Quick test_service_machine;
    Alcotest.test_case "rule parsing" `Quick test_rule_parsing;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        qcheck_rounds_conserve;
        qcheck_counts_bit_identical;
        qcheck_chain_matches_sim;
      ]
