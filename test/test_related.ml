(* Tests for the related allocation processes the paper builds on:
   weighted jobs, the parallel collision protocol, and the exact edge
   chain. *)

module W = Core.Weighted
module C = Edgeorient.Class_chain

let rng ?(seed = 42) () = Prng.Rng.create ~seed ()

(* ---- weighted ---- *)

let test_weight_samples_positive () =
  let g = rng () in
  List.iter
    (fun dist ->
      for _ = 1 to 500 do
        let w = W.sample_weight g dist in
        if w <= 0. then Alcotest.failf "non-positive weight from %s" (W.dist_name dist)
      done)
    [
      W.Constant 2.;
      W.Uniform_unit;
      W.Exponential 1.;
      W.Pareto { alpha = 1.5; xmin = 1. };
    ]

let test_weight_means () =
  let g = rng () in
  let mean dist reps =
    let acc = ref 0. in
    for _ = 1 to reps do
      acc := !acc +. W.sample_weight g dist
    done;
    !acc /. float_of_int reps
  in
  Alcotest.(check (float 1e-9)) "constant" 2. (mean (W.Constant 2.) 100);
  let u = mean W.Uniform_unit 50_000 in
  Alcotest.(check bool) "uniform mean 1/2" true (Float.abs (u -. 0.5) < 0.02);
  let e = mean (W.Exponential 3.) 50_000 in
  Alcotest.(check bool) "exponential mean" true (Float.abs (e -. 3.) < 0.15);
  (* Pareto(alpha=3, xmin=1) has mean alpha/(alpha-1) = 1.5. *)
  let p = mean (W.Pareto { alpha = 3.; xmin = 1. }) 100_000 in
  Alcotest.(check bool) "pareto mean" true (Float.abs (p -. 1.5) < 0.1)

let test_weight_invalid () =
  let g = rng () in
  Alcotest.check_raises "bad constant"
    (Invalid_argument "Weighted: non-positive constant weight") (fun () ->
      ignore (W.sample_weight g (W.Constant 0.)));
  Alcotest.check_raises "bad pareto" (Invalid_argument "Weighted: bad Pareto")
    (fun () -> ignore (W.sample_weight g (W.Pareto { alpha = 0.; xmin = 1. })))

let test_weighted_system_conservation () =
  let g = rng () in
  let t = W.static_run g ~n:16 ~m:64 ~d:2 ~dist:W.Uniform_unit in
  Alcotest.(check int) "balls" 64 (W.num_balls t);
  let sum_loads = Array.init 16 (W.load t) |> Array.fold_left ( +. ) 0. in
  Alcotest.(check bool) "loads sum = total weight" true
    (Float.abs (sum_loads -. W.total_weight t) < 1e-9);
  for _ = 1 to 500 do
    W.dynamic_step t g ~d:2 ~dist:W.Uniform_unit
  done;
  Alcotest.(check int) "balls conserved" 64 (W.num_balls t);
  Alcotest.(check bool) "max >= avg" true
    (W.max_load t >= W.total_weight t /. 16.)

let test_weighted_removal_empties () =
  let g = rng () in
  let t = W.static_run g ~n:4 ~m:10 ~d:1 ~dist:(W.Constant 1.) in
  for _ = 1 to 10 do
    ignore (W.remove_uniform_ball t g)
  done;
  Alcotest.(check int) "empty" 0 (W.num_balls t);
  Alcotest.(check bool) "loads ~ 0" true (W.max_load t < 1e-9);
  Alcotest.check_raises "remove from empty"
    (Invalid_argument "Weighted.remove_uniform_ball: empty") (fun () ->
      ignore (W.remove_uniform_ball t g))

let test_weighted_constant_matches_unweighted () =
  (* With constant weight 1, the weighted system's max load has the same
     law as Bins + ABKU[d].  Compare medians. *)
  let reps = 30 and n = 1024 in
  let gw = rng ~seed:5 () and gb = rng ~seed:6 () in
  let med_w =
    Stats.Quantile.median
      (Array.init reps (fun _ ->
           let g = Prng.Rng.split gw in
           W.max_load (W.static_run g ~n ~m:n ~d:2 ~dist:(W.Constant 1.))))
  in
  let med_b =
    Stats.Quantile.median
      (Stats.Quantile.of_ints
         (Core.Static_process.max_load_samples (Core.Scheduling_rule.abku 2)
            gb ~n ~m:n ~reps))
  in
  Alcotest.(check bool)
    (Printf.sprintf "same ballpark: %.1f vs %.1f" med_w med_b)
    true
    (Float.abs (med_w -. med_b) <= 1.)

(* ---- parallel allocation ---- *)

let test_parallel_all_placed () =
  let g = rng () in
  let result = Core.Parallel_alloc.run g ~n:256 ~m:256 ~d:2 ~rounds:3 () in
  Alcotest.(check int) "all balls placed" 256
    (Array.fold_left ( + ) 0 result.loads);
  Alcotest.(check bool) "max consistent" true
    (result.max_load = Array.fold_left Stdlib.max 0 result.loads)

let test_parallel_zero_rounds_is_greedy_fallback () =
  let g = rng () in
  let result = Core.Parallel_alloc.run g ~n:64 ~m:64 ~d:2 ~rounds:0 () in
  Alcotest.(check int) "all via fallback" 64 result.fallback_balls;
  Alcotest.(check int) "no rounds used" 0 result.rounds_used

let test_parallel_rounds_reduce_fallback () =
  let g = rng ~seed:7 () in
  let fb rounds =
    let result = Core.Parallel_alloc.run g ~n:4096 ~m:4096 ~d:2 ~rounds () in
    result.fallback_balls
  in
  let f1 = fb 1 and f4 = fb 4 in
  Alcotest.(check bool)
    (Printf.sprintf "fallback shrinks: %d -> %d" f1 f4)
    true (f4 < f1 / 4)

let test_parallel_threshold_respected () =
  (* In a one-round run, any bin that accepted in the round holds at most
     the cap; fallback can exceed it only through greedy placement of
     leftovers.  With a huge cap everything places in round one. *)
  let g = rng () in
  let result =
    Core.Parallel_alloc.run g ~n:128 ~m:128 ~d:2 ~rounds:1
      ~threshold:(fun _ -> 1_000_000) ()
  in
  Alcotest.(check int) "no fallback" 0 result.fallback_balls;
  Alcotest.(check int) "one round" 1 result.rounds_used

let test_parallel_beats_sequential_d1 () =
  let g = rng ~seed:9 () in
  let par =
    Stats.Quantile.median
      (Array.init 7 (fun _ ->
           let g' = Prng.Rng.split g in
           float_of_int
             (Core.Parallel_alloc.run g' ~n:16384 ~m:16384 ~d:2 ~rounds:4 ())
               .max_load))
  in
  let seq =
    Stats.Quantile.median
      (Stats.Quantile.of_ints
         (Core.Static_process.max_load_samples (Core.Scheduling_rule.abku 1) g
            ~n:16384 ~m:16384 ~reps:7))
  in
  Alcotest.(check bool)
    (Printf.sprintf "parallel %.1f < sequential d=1 %.1f" par seq)
    true (par < seq)

let test_parallel_invalid () =
  let g = rng () in
  Alcotest.check_raises "bad d" (Invalid_argument "Parallel_alloc.run: d must be >= 1")
    (fun () -> ignore (Core.Parallel_alloc.run g ~n:4 ~m:4 ~d:0 ~rounds:1 ()))

(* ---- exact edge chain ---- *)

let test_edge_exact_transitions_sum () =
  let x = C.adversarial ~n:5 in
  let ts = C.exact_transitions x in
  let total = List.fold_left (fun a (_, p) -> a +. p) 0. ts in
  Alcotest.(check bool) "sums to 1" true (Float.abs (total -. 1.) < 1e-9);
  (* Self-loop mass at least 1/2 (the b = 0 branch). *)
  let self =
    List.fold_left (fun a (s, p) -> if C.equal s x then a +. p else a) 0. ts
  in
  Alcotest.(check bool) "lazy" true (self >= 0.5)

let test_edge_exact_matches_simulation () =
  let x = C.adversarial ~n:4 in
  let merged = Hashtbl.create 16 in
  List.iter
    (fun (s, p) ->
      Hashtbl.replace merged s
        (p +. Option.value ~default:0. (Hashtbl.find_opt merged s)))
    (C.exact_transitions x);
  let g = rng () in
  let counts = Hashtbl.create 16 in
  let reps = 40_000 in
  for _ = 1 to reps do
    let s = C.step g x in
    Hashtbl.replace counts s
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts s))
  done;
  Hashtbl.iter
    (fun s p ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts s) in
      let frac = float_of_int c /. float_of_int reps in
      if Float.abs (frac -. p) > 0.02 then
        Alcotest.failf "state freq %f vs exact %f" frac p)
    merged

let test_edge_coupled_marginal_matches_exact () =
  (* The Section-6 coupling's first marginal must follow the chain law
     even from a G-tilde-adjacent pair where the bit flip is active. *)
  let y = C.of_discrepancies [| 0; 0; 1; -1; 0 |] in
  let x = C.of_discrepancies [| 1; -1; 1; -1; 0 |] in
  (match C.g_tilde_lambda x y with
  | None -> Alcotest.fail "test pair not G-tilde adjacent"
  | Some _ -> ());
  let exact = Hashtbl.create 16 in
  List.iter
    (fun (s, p) ->
      Hashtbl.replace exact s
        (p +. Option.value ~default:0. (Hashtbl.find_opt exact s)))
    (C.exact_transitions x);
  let coupled = C.coupled () in
  let g = rng ~seed:44 () in
  let counts = Hashtbl.create 16 in
  let reps = 60_000 in
  for _ = 1 to reps do
    let x', _ = coupled.Coupling.Coupled_chain.step g x y in
    Hashtbl.replace counts x'
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts x'))
  done;
  Hashtbl.iter
    (fun s p ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts s) in
      let frac = float_of_int c /. float_of_int reps in
      if Float.abs (frac -. p) > 0.015 then
        Alcotest.failf "x-marginal freq %f vs exact %f" frac p)
    exact;
  (* And the second marginal likewise (the flipped bit must not bias it). *)
  let counts_y = Hashtbl.create 16 in
  let exact_y = Hashtbl.create 16 in
  List.iter
    (fun (s, p) ->
      Hashtbl.replace exact_y s
        (p +. Option.value ~default:0. (Hashtbl.find_opt exact_y s)))
    (C.exact_transitions y);
  for _ = 1 to reps do
    let _, y' = coupled.Coupling.Coupled_chain.step g x y in
    Hashtbl.replace counts_y y'
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts_y y'))
  done;
  Hashtbl.iter
    (fun s p ->
      let c = Option.value ~default:0 (Hashtbl.find_opt counts_y s) in
      let frac = float_of_int c /. float_of_int reps in
      if Float.abs (frac -. p) > 0.015 then
        Alcotest.failf "y-marginal freq %f vs exact %f" frac p)
    exact_y

let test_edge_reachable_contains_start_and_closes () =
  let start = C.start ~n:5 in
  let states = C.reachable ~from:start in
  Alcotest.(check bool) "start included" true
    (Array.exists (fun s -> C.equal s start) states);
  (* Closure: every successor of every state is in the set. *)
  let member s = Array.exists (fun s' -> C.equal s s') states in
  Array.iter
    (fun s ->
      List.iter
        (fun (s', p) -> if p > 0. && not (member s') then
            Alcotest.fail "reachable set not closed")
        (C.exact_transitions s))
    states

let test_edge_exact_mixing_below_bounds () =
  List.iter
    (fun n ->
      let states = C.reachable ~from:(C.start ~n) in
      let chain = Markov.Exact.build ~states ~transitions:C.exact_transitions in
      let tau = Markov.Exact.mixing_time ~eps:0.25 ~max_t:100_000 chain in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d: tau %d below bounds" n tau)
        true
        (float_of_int tau <= Theory.Bounds.theorem2 ~n
        && float_of_int tau <= Theory.Bounds.corollary64 ~n ~eps:0.25))
    [ 4; 5; 6 ]

let test_edge_exact_stationary_favours_balance () =
  let n = 6 in
  let states = C.reachable ~from:(C.start ~n) in
  let chain = Markov.Exact.build ~states ~transitions:C.exact_transitions in
  let pi = Markov.Exact.stationary chain in
  (* The most likely states should have small unfairness. *)
  let best = ref 0 in
  Array.iteri (fun i p -> if p > pi.(!best) then best := i) pi;
  let top = Markov.Exact.state chain !best in
  Alcotest.(check bool) "top state is fair-ish" true (C.unfairness top <= 2)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("weight samples positive", test_weight_samples_positive);
      ("weight means", test_weight_means);
      ("weight invalid", test_weight_invalid);
      ("weighted system conservation", test_weighted_system_conservation);
      ("weighted removal empties", test_weighted_removal_empties);
      ("weighted const = unweighted", test_weighted_constant_matches_unweighted);
      ("parallel all placed", test_parallel_all_placed);
      ("parallel zero rounds", test_parallel_zero_rounds_is_greedy_fallback);
      ("parallel rounds reduce fallback", test_parallel_rounds_reduce_fallback);
      ("parallel threshold respected", test_parallel_threshold_respected);
      ("parallel beats sequential d=1", test_parallel_beats_sequential_d1);
      ("parallel invalid", test_parallel_invalid);
      ("edge exact transitions sum", test_edge_exact_transitions_sum);
      ("edge exact law = simulation", test_edge_exact_matches_simulation);
      ("edge coupling marginals exact", test_edge_coupled_marginal_matches_exact);
      ("edge reachable closed", test_edge_reachable_contains_start_and_closes);
      ("edge exact mixing below bounds", test_edge_exact_mixing_below_bounds);
      ("edge stationary favours balance", test_edge_exact_stationary_favours_balance);
    ]
