(* Tests for the ODE integrator and the mean-field equations. *)

module Mf = Fluid.Mean_field

let feq ?(tol = 1e-6) a b = Float.abs (a -. b) <= tol

let test_rk4_exponential_decay () =
  (* y' = -y from 1: y(t) = e^-t. *)
  let f y = [| -.y.(0) |] in
  let y = Fluid.Ode.integrate ~f ~y0:[| 1. |] ~t:1. ~steps:100 in
  Alcotest.(check bool) "e^-1" true (feq ~tol:1e-8 y.(0) (exp (-1.)))

let test_rk4_linear_system () =
  (* y0' = y1, y1' = -y0 from (0,1): solution (sin t, cos t). *)
  let f y = [| y.(1); -.y.(0) |] in
  let y = Fluid.Ode.integrate ~f ~y0:[| 0.; 1. |] ~t:(Float.pi /. 2.) ~steps:200 in
  Alcotest.(check bool) "sin(pi/2)" true (feq ~tol:1e-7 y.(0) 1.);
  Alcotest.(check bool) "cos(pi/2)" true (feq ~tol:1e-7 y.(1) 0.)

let test_rk4_zero_time () =
  let f y = [| -.y.(0) |] in
  let y = Fluid.Ode.integrate ~f ~y0:[| 3. |] ~t:0. ~steps:10 in
  Alcotest.(check (float 1e-12)) "unchanged" 3. y.(0)

let test_rk4_invalid () =
  let f y = [| -.y.(0) |] in
  Alcotest.check_raises "negative time" (Invalid_argument "Ode.integrate: negative time")
    (fun () -> ignore (Fluid.Ode.integrate ~f ~y0:[| 1. |] ~t:(-1.) ~steps:10));
  Alcotest.check_raises "dt" (Invalid_argument "Ode.rk4_step: dt must be positive")
    (fun () -> ignore (Fluid.Ode.rk4_step ~f ~dt:0. [| 1. |]))

let test_fixed_point_logistic () =
  (* y' = y (1 - y) converges to 1. *)
  let f y = [| y.(0) *. (1. -. y.(0)) |] in
  let y = Fluid.Ode.to_fixed_point ~f ~y0:[| 0.2 |] () in
  Alcotest.(check bool) "reaches 1" true (feq ~tol:1e-6 y.(0) 1.)

let poisson_tail lambda i =
  (* P(Poisson(lambda) >= i) *)
  let rec pmf k acc = if k = 0 then acc else pmf (k - 1) (acc *. lambda /. float_of_int k) in
  let term k = pmf k (exp (-.lambda)) in
  let rec sum k acc = if k >= i then acc else sum (k + 1) (acc +. term k) in
  1. -. sum 0 0.

let test_static_d1_is_poisson () =
  (* With d = 1 the static fluid limit is s_i(t) = P(Poisson(t) >= i). *)
  let s = Mf.static ~d:1 ~c:1. ~levels:12 in
  for i = 1 to 8 do
    let expected = poisson_tail 1. i in
    if not (feq ~tol:1e-4 s.(i - 1) expected) then
      Alcotest.failf "s_%d = %g vs Poisson tail %g" i s.(i - 1) expected
  done

let test_static_mass_conservation () =
  (* Throwing c*n balls leaves mean load c. *)
  List.iter
    (fun d ->
      let s = Mf.static ~d ~c:2. ~levels:40 in
      Alcotest.(check bool)
        (Printf.sprintf "mass d=%d" d)
        true
        (feq ~tol:1e-6 (Mf.mean_load s) 2.))
    [ 1; 2; 3 ]

let test_static_two_choices_thinner_tail () =
  let s1 = Mf.static ~d:1 ~c:1. ~levels:20 in
  let s2 = Mf.static ~d:2 ~c:1. ~levels:20 in
  Alcotest.(check bool) "tail at 4 thinner" true (s2.(3) < s1.(3));
  Alcotest.(check bool) "tail at 6 much thinner" true (s2.(5) < s1.(5) /. 10.)

let test_uniform_profile () =
  let s = Mf.uniform_profile ~m_over_n:2.5 ~levels:5 in
  Alcotest.(check bool) "levels" true
    (feq s.(0) 1. && feq s.(1) 1. && feq s.(2) 0.5 && feq s.(3) 0.);
  Alcotest.(check bool) "mass" true (feq (Mf.mean_load s) 2.5)

let test_fixed_points_conserve_mass () =
  List.iter
    (fun d ->
      let sa = Mf.fixed_point_a ~d ~m_over_n:1. ~levels:30 in
      Alcotest.(check bool)
        (Printf.sprintf "A mass d=%d" d)
        true
        (feq ~tol:1e-5 (Mf.mean_load sa) 1.);
      let sb = Mf.fixed_point_b ~d ~m_over_n:1. ~levels:30 in
      Alcotest.(check bool)
        (Printf.sprintf "B mass d=%d" d)
        true
        (feq ~tol:1e-5 (Mf.mean_load sb) 1.))
    [ 1; 2 ]

let test_fixed_point_is_stationary () =
  let d = 2 and m_over_n = 1. in
  let sa = Mf.fixed_point_a ~d ~m_over_n ~levels:30 in
  let da = Mf.derivative_a ~d ~m_over_n sa in
  Array.iter (fun x -> if Float.abs x > 1e-8 then Alcotest.failf "A deriv %g" x) da;
  let sb = Mf.fixed_point_b ~d ~m_over_n ~levels:30 in
  let db = Mf.derivative_b ~d sb in
  Array.iter (fun x -> if Float.abs x > 1e-8 then Alcotest.failf "B deriv %g" x) db

let test_fixed_point_monotone_profile () =
  let s = Mf.fixed_point_a ~d:2 ~m_over_n:1. ~levels:30 in
  for i = 1 to Array.length s - 1 do
    if s.(i) > s.(i - 1) +. 1e-12 then Alcotest.fail "profile not non-increasing"
  done;
  Array.iter
    (fun x -> if x < -1e-12 || x > 1. +. 1e-12 then Alcotest.fail "outside [0,1]")
    s

let test_predicted_max_load () =
  Alcotest.(check int) "threshold location" 2
    (Mf.predicted_max_load ~n:100 [| 1.; 0.5; 0.001 |]);
  Alcotest.(check int) "all below" 0 (Mf.predicted_max_load ~n:10 [| 0.01 |])

let test_predicted_max_load_grows_with_n () =
  let s = Mf.fixed_point_a ~d:2 ~m_over_n:1. ~levels:30 in
  let p1 = Mf.predicted_max_load ~n:100 s in
  let p2 = Mf.predicted_max_load ~n:100_000 s in
  Alcotest.(check bool) "monotone in n" true (p2 >= p1);
  Alcotest.(check bool) "in sane range" true (p1 >= 2 && p2 <= 12)

let test_insertion_tail () =
  let q = Mf.insertion_tail ~d:3 [| 0.5; 0.1 |] in
  Alcotest.(check bool) "cubes" true (feq q.(0) 0.125 && feq q.(1) 0.001);
  Alcotest.check_raises "bad d"
    (Invalid_argument "Mean_field.insertion_tail: d must be >= 1") (fun () ->
      ignore (Mf.insertion_tail ~d:0 [| 1. |]))

let test_derivative_a_signs () =
  (* From the adversarial-ish profile (all mass high), high levels must
     drain: derivative at the top is negative. *)
  let s = [| 1.; 1.; 1.; 0.; 0. |] in
  (* mean load 3 -> m_over_n = 3 *)
  let d = Mf.derivative_a ~d:2 ~m_over_n:3. s in
  Alcotest.(check bool) "top level drains" true (d.(2) < 0.);
  Alcotest.(check bool) "empty level fills" true (d.(3) >= 0.)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("rk4 exponential", test_rk4_exponential_decay);
      ("rk4 linear system", test_rk4_linear_system);
      ("rk4 zero time", test_rk4_zero_time);
      ("rk4 invalid", test_rk4_invalid);
      ("fixed point logistic", test_fixed_point_logistic);
      ("static d=1 is Poisson", test_static_d1_is_poisson);
      ("static mass conservation", test_static_mass_conservation);
      ("static d=2 thinner tail", test_static_two_choices_thinner_tail);
      ("uniform profile", test_uniform_profile);
      ("fixed points conserve mass", test_fixed_points_conserve_mass);
      ("fixed point stationary", test_fixed_point_is_stationary);
      ("fixed point monotone", test_fixed_point_monotone_profile);
      ("predicted max load", test_predicted_max_load);
      ("predicted max load grows with n", test_predicted_max_load_grows_with_n);
      ("insertion tail", test_insertion_tail);
      ("derivative A signs", test_derivative_a_signs);
    ]
