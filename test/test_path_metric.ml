(* Exact verification of Section 6 in the paper's own metric: build
   Definition 6.3's Δ on the enumerated state space, then check the
   contraction statements of Lemmas 6.2 and 6.3 as exact inequalities
   over the coupling's full transition law. *)

module C = Edgeorient.Class_chain
module P = Edgeorient.Path_metric

let metric_for n =
  let states = C.reachable ~from:(C.start ~n) in
  (states, P.build ~states)

let test_metric_basics () =
  let _, metric = metric_for 5 in
  Alcotest.(check int) "size" 9 (P.size metric);
  let x = C.start ~n:5 in
  Alcotest.(check int) "self distance" 0 (P.distance metric x x);
  Alcotest.(check bool) "diameter positive and finite" true
    (P.diameter metric > 0)

let test_metric_symmetric_and_triangle () =
  let states, metric = metric_for 5 in
  Array.iter
    (fun x ->
      Array.iter
        (fun y ->
          let dxy = P.distance metric x y in
          Alcotest.(check int) "symmetry" dxy (P.distance metric y x);
          Array.iter
            (fun z ->
              if P.distance metric x z > dxy + P.distance metric y z then
                Alcotest.fail "triangle inequality violated")
            states)
        states)
    states

let test_gamma_pairs_have_weight_distance () =
  (* A Gamma move of weight k puts the pair at distance <= k, and >= 1. *)
  List.iter
    (fun n ->
      let _, metric = metric_for n in
      List.iter
        (fun (x, y, k) ->
          let d = P.distance metric x y in
          if d > k || d < 1 then
            Alcotest.failf "n=%d: gamma weight %d but distance %d" n k d)
        (P.gamma_pairs metric))
    [ 4; 5; 6 ]

let test_g_tilde_pairs_at_distance_one () =
  let states, metric = metric_for 6 in
  let found = ref 0 in
  Array.iter
    (fun x ->
      Array.iter
        (fun y ->
          match C.g_tilde_lambda x y with
          | Some _ ->
              incr found;
              Alcotest.(check int) "distance 1" 1 (P.distance metric x y)
          | None -> ())
        states)
    states;
  Alcotest.(check bool) "some pairs" true (!found > 0)

(* The heart: E[Delta after] <= Delta(x, y) - (n choose 2)^-1 for every
   Gamma-adjacent pair, computed from the exact joint law of the
   coupling, in the exact metric. *)
let check_contraction n =
  let _, metric = metric_for n in
  let margin = 1. /. float_of_int (n * (n - 1) / 2) in
  let pairs = P.gamma_pairs metric in
  Alcotest.(check bool) "pairs exist" true (pairs <> []);
  List.iter
    (fun (x, y, _k) ->
      let d0 = float_of_int (P.distance metric x y) in
      let expected =
        List.fold_left
          (fun acc ((x', y'), p) ->
            acc +. (p *. float_of_int (P.distance metric x' y')))
          0.
          (C.coupled_exact_transitions x y)
      in
      if expected > d0 -. margin +. 1e-9 then
        Alcotest.failf
          "n=%d: E[Delta'] = %.6f > %.6f - %.6f for a Gamma pair" n expected
          d0 margin)
    pairs

let test_lemma_6_2_6_3_exact_n4 () = check_contraction 4
let test_lemma_6_2_6_3_exact_n5 () = check_contraction 5
let test_lemma_6_2_6_3_exact_n6 () = check_contraction 6

let test_coupled_transitions_stay_in_space () =
  let states, _ = metric_for 5 in
  let member s = Array.exists (fun s' -> C.equal s s') states in
  Array.iter
    (fun x ->
      Array.iter
        (fun y ->
          match C.j_tilde x y with
          | Some _ ->
              List.iter
                (fun ((x', y'), p) ->
                  if p > 0. && (not (member x') || not (member y')) then
                    Alcotest.fail "coupled successor left the state space")
                (C.coupled_exact_transitions x y)
          | None -> ())
        states)
    states

let test_coupled_exact_law_sums_to_one () =
  let x = C.adversarial ~n:5 and y = C.start ~n:5 in
  let total =
    List.fold_left (fun a (_, p) -> a +. p) 0. (C.coupled_exact_transitions x y)
  in
  Alcotest.(check bool) "mass 1" true (Float.abs (total -. 1.) < 1e-9)

let test_path_coupling_bound_from_exact_beta () =
  (* Close the loop: the exact per-pair contraction plus Lemma 3.1(1)
     reproduces a Corollary 6.4-style bound that the exact mixing time
     respects. *)
  let n = 5 in
  let states, metric = metric_for n in
  let beta =
    (* worst-case contraction ratio over Gamma pairs *)
    List.fold_left
      (fun worst (x, y, _) ->
        let d0 = float_of_int (P.distance metric x y) in
        let e =
          List.fold_left
            (fun acc ((x', y'), p) ->
              acc +. (p *. float_of_int (P.distance metric x' y')))
            0.
            (C.coupled_exact_transitions x y)
        in
        Float.max worst (e /. d0))
      0. (P.gamma_pairs metric)
  in
  Alcotest.(check bool) "beta < 1" true (beta < 1.);
  let bound =
    Coupling.Path_coupling.bound_contractive ~beta
      ~diameter:(P.diameter metric) ~eps:0.25
  in
  (* Same unified pipeline as bench/e08: reachable closure -> chain. *)
  let chain = C.exact_chain ~from:(C.start ~n) in
  Alcotest.(check int) "builder state space matches reachable" (Array.length states)
    (Markov.Exact.size chain);
  let tau = Markov.Exact.mixing_time ~eps:0.25 chain in
  Alcotest.(check bool)
    (Printf.sprintf "exact tau %d <= lemma bound %.1f" tau bound)
    true
    (float_of_int tau <= bound +. 1e-9)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("metric basics", test_metric_basics);
      ("metric symmetric + triangle", test_metric_symmetric_and_triangle);
      ("gamma pairs within weight", test_gamma_pairs_have_weight_distance);
      ("G-tilde pairs at distance 1", test_g_tilde_pairs_at_distance_one);
      ("Lemmas 6.2/6.3 exact, n=4", test_lemma_6_2_6_3_exact_n4);
      ("Lemmas 6.2/6.3 exact, n=5", test_lemma_6_2_6_3_exact_n5);
      ("Lemmas 6.2/6.3 exact, n=6", test_lemma_6_2_6_3_exact_n6);
      ("coupled successors in space", test_coupled_transitions_stay_in_space);
      ("coupled exact law mass", test_coupled_exact_law_sums_to_one);
      ("lemma bound covers exact tau", test_path_coupling_bound_from_exact_beta);
    ]
