(* Tests for the multicore fan-out layer and the determinism guarantee of
   parallel measurements. *)

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector

let test_map_array_matches_sequential () =
  let xs = Array.init 100 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (array int)) "same results" (Array.map f xs)
    (Parallel.map_array ~domains:4 f xs);
  Alcotest.(check (array int)) "domains=1" (Array.map f xs)
    (Parallel.map_array ~domains:1 f xs)

let test_map_array_empty_and_single () =
  Alcotest.(check (array int)) "empty" [||]
    (Parallel.map_array ~domains:4 (fun x -> x) [||]);
  Alcotest.(check (array int)) "single" [| 7 |]
    (Parallel.map_array ~domains:4 (fun x -> x + 6) [| 1 |])

let test_map_array_more_domains_than_tasks () =
  let xs = [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "ok" [| 2; 4; 6 |]
    (Parallel.map_array ~domains:16 (fun x -> 2 * x) xs)

let test_map_array_propagates_exception () =
  Alcotest.check_raises "exception resurfaces" (Failure "boom") (fun () ->
      ignore
        (Parallel.map_array ~domains:3
           (fun x -> if x = 5 then failwith "boom" else x)
           (Array.init 10 (fun i -> i))))

let test_map_array_invalid () =
  Alcotest.check_raises "domains < 1"
    (Invalid_argument "Parallel.map_array: domains < 1") (fun () ->
      ignore (Parallel.map_array ~domains:0 (fun x -> x) [| 1 |]))

let test_init_array () =
  Alcotest.(check (array int)) "init" [| 0; 2; 4 |]
    (Parallel.init_array ~domains:2 3 (fun i -> 2 * i));
  Alcotest.check_raises "negative" (Invalid_argument "Parallel.init_array: negative size")
    (fun () -> ignore (Parallel.init_array
      ~domains:2 (-1) (fun i -> i)))

let test_recommended_positive () =
  Alcotest.(check bool) "at least one" true (Parallel.recommended_domains () >= 1)

let measure_with ~domains =
  let process =
    Core.Dynamic_process.make Core.Scenario.A (Core.Scheduling_rule.abku 2) ~n:16
  in
  let coupled = Core.Coupled.monotone process in
  let rng = Prng.Rng.create ~seed:77 () in
  Coupling.Coalescence.measure ~domains ~reps:20 ~limit:10_000 ~rng coupled
    ~init:(fun _g ->
      ( Mv.of_load_vector (Lv.all_in_one ~n:16 ~m:16),
        Mv.of_load_vector (Lv.uniform ~n:16 ~m:16) ))

let test_measure_deterministic_across_domains () =
  let seq = measure_with ~domains:1 and par = measure_with ~domains:4 in
  Alcotest.(check (array int)) "identical times"
    seq.Coupling.Coalescence.times par.Coupling.Coalescence.times;
  Alcotest.(check int) "identical failures" seq.Coupling.Coalescence.failures
    par.Coupling.Coalescence.failures

let test_recovery_deterministic_across_domains () =
  let run ~domains =
    let rng = Prng.Rng.create ~seed:5 () in
    Core.Recovery.measure ~domains ~rng ~reps:10
      {
        Core.Recovery.scenario = Core.Scenario.A;
        rule = Core.Scheduling_rule.abku 2;
        n = 32;
        m = 32;
      }
      ~target:4 ~limit:100_000
  in
  let seq = run ~domains:1 and par = run ~domains:3 in
  Alcotest.(check (array int)) "identical times"
    seq.Coupling.Coalescence.times par.Coupling.Coalescence.times

let test_pool_runs_all_slices () =
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      Alcotest.(check int) "size" 4 (Parallel.Pool.size pool);
      let hits = Array.make 4 0 in
      (* Reuse across jobs: the same workers serve every run. *)
      for _ = 1 to 5 do
        Parallel.Pool.run pool (fun w size ->
            Alcotest.(check int) "slice size" 4 size;
            hits.(w) <- hits.(w) + 1)
      done;
      Alcotest.(check (array int)) "every slice ran every job"
        [| 5; 5; 5; 5 |] hits)

let test_pool_size_one_inline () =
  Parallel.Pool.with_pool ~domains:1 (fun pool ->
      let ran = ref false in
      Parallel.Pool.run pool (fun w size ->
          Alcotest.(check int) "worker" 0 w;
          Alcotest.(check int) "size" 1 size;
          ran := true);
      Alcotest.(check bool) "ran inline" true !ran)

let test_pool_propagates_exception () =
  Parallel.Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.check_raises "worker failure resurfaces" (Failure "pool-boom")
        (fun () ->
          Parallel.Pool.run pool (fun w _ ->
              if w = 2 then failwith "pool-boom"));
      (* The pool survives a failed job. *)
      let total = Atomic.make 0 in
      Parallel.Pool.run pool (fun w _ -> ignore (Atomic.fetch_and_add total w));
      Alcotest.(check int) "usable after failure" 3 (Atomic.get total))

let test_pool_shutdown_idempotent () =
  let pool = Parallel.Pool.create ~domains:2 () in
  Parallel.Pool.run pool (fun _ _ -> ());
  Parallel.Pool.shutdown pool;
  Parallel.Pool.shutdown pool;
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Parallel.Pool.run: pool is shut down") (fun () ->
      Parallel.Pool.run pool (fun _ _ -> ()))

let test_pool_partitioned_sum () =
  (* The intended usage shape: disjoint output ranges per worker. *)
  let n = 10_000 in
  let xs = Array.init n (fun i -> float_of_int (i mod 97)) in
  let partial = Array.make 3 0. in
  Parallel.Pool.with_pool ~domains:3 (fun pool ->
      Parallel.Pool.run pool (fun w size ->
          let lo = n * w / size and hi = n * (w + 1) / size in
          let acc = ref 0. in
          for i = lo to hi - 1 do
            acc := !acc +. xs.(i)
          done;
          partial.(w) <- !acc));
  let seq = Array.fold_left ( +. ) 0. xs in
  Alcotest.(check (float 1e-9)) "partitioned sum" seq
    (partial.(0) +. partial.(1) +. partial.(2))

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("map_array = sequential map", test_map_array_matches_sequential);
      ("map_array empty/single", test_map_array_empty_and_single);
      ("more domains than tasks", test_map_array_more_domains_than_tasks);
      ("exception propagation", test_map_array_propagates_exception);
      ("invalid domains", test_map_array_invalid);
      ("init_array", test_init_array);
      ("recommended domains", test_recommended_positive);
      ("coalescence deterministic across domains",
       test_measure_deterministic_across_domains);
      ("recovery deterministic across domains",
       test_recovery_deterministic_across_domains);
      ("pool runs all slices and is reusable", test_pool_runs_all_slices);
      ("pool size one runs inline", test_pool_size_one_inline);
      ("pool propagates exceptions", test_pool_propagates_exception);
      ("pool shutdown idempotent", test_pool_shutdown_idempotent);
      ("pool partitioned sum", test_pool_partitioned_sum);
    ]
