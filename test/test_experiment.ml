(* Tests for the declarative experiment framework (lib/experiment):
   filesystem helpers shared by the sinks, the JSON value layer, the
   BENCH_RESULTS.json sink, and the cross-domain determinism contract. *)

let fresh_tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "repro_expfw_%d_%d" (Unix.getpid ()) !counter)
    in
    (* A previous crashed run may have left it behind. *)
    ignore (Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)));
    dir

(* --- Util ------------------------------------------------------------ *)

let test_mkdir_p_nested () =
  let root = fresh_tmp_dir () in
  let deep = List.fold_left Filename.concat root [ "a"; "b"; "c" ] in
  Experiment.Util.mkdir_p deep;
  Alcotest.(check bool) "deep path exists" true (Sys.is_directory deep);
  (* Idempotent on an existing tree. *)
  Experiment.Util.mkdir_p deep;
  Alcotest.(check bool) "still exists" true (Sys.is_directory deep)

let test_mkdir_p_race () =
  (* Four domains race to create the same fresh nested path; the lost
     races must be swallowed, not surfaced as Sys_error. *)
  let root = fresh_tmp_dir () in
  let deep = List.fold_left Filename.concat root [ "x"; "y"; "z" ] in
  let worker () =
    try
      Experiment.Util.mkdir_p deep;
      None
    with exn -> Some (Printexc.to_string exn)
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  let errors = List.filter_map Domain.join domains in
  Alcotest.(check (list string)) "no domain raised" [] errors;
  Alcotest.(check bool) "path exists" true (Sys.is_directory deep)

let test_mkdir_p_file_conflict () =
  let root = fresh_tmp_dir () in
  Experiment.Util.mkdir_p root;
  let file = Filename.concat root "plain" in
  Experiment.Util.write_file file "not a directory\n";
  let raised =
    try
      Experiment.Util.mkdir_p (Filename.concat file "sub");
      false
    with Sys_error _ -> true
  in
  Alcotest.(check bool) "child of a regular file raises Sys_error" true raised

let test_write_file () =
  let root = fresh_tmp_dir () in
  Experiment.Util.mkdir_p root;
  let path = Filename.concat root "out.txt" in
  Experiment.Util.write_file path "first";
  Experiment.Util.write_file path "second";
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "truncates on rewrite" "second" contents

let test_sanitize_component () =
  Alcotest.(check string)
    "keeps [A-Za-z0-9_-]" "AZaz09_-"
    (Experiment.Util.sanitize_component "AZaz09_-");
  Alcotest.(check string)
    "replaces the rest" "E1__n__recovery_steps_"
    (Experiment.Util.sanitize_component "E1: n, recovery steps.");
  Alcotest.(check string)
    "slash is not a path escape" "a_b"
    (Experiment.Util.sanitize_component "a/b")

(* --- Json ------------------------------------------------------------ *)

let test_json_escaping () =
  let j = Experiment.Json.String "a\"b\\c\nd\re\tf\bg\x0ch\x01i" in
  Alcotest.(check string)
    "control characters escaped"
    "\"a\\\"b\\\\c\\nd\\re\\tf\\bg\\fh\\u0001i\""
    (Experiment.Json.to_string ~indent:0 j)

let test_json_layout () =
  let j =
    Experiment.Json.Obj
      [
        ("a", Experiment.Json.Int 1);
        ("b", Experiment.Json.List [ Experiment.Json.Bool true; Experiment.Json.Null ]);
      ]
  in
  Alcotest.(check string)
    "compact" "{\"a\":1,\"b\":[true,null]}"
    (Experiment.Json.to_string ~indent:0 j);
  Alcotest.(check string)
    "pretty"
    "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    null\n  ]\n}"
    (Experiment.Json.to_string j)

let test_json_floats () =
  let repr f = Experiment.Json.to_string ~indent:0 (Experiment.Json.Float f) in
  Alcotest.(check string) "integral gets a point" "2.0" (repr 2.0);
  Alcotest.(check string) "nan is null" "null" (repr Float.nan);
  Alcotest.(check string) "inf is null" "null" (repr Float.infinity);
  (* Round-trip: the printed representation parses back exactly. *)
  List.iter
    (fun f ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "round-trip %h" f)
        f
        (float_of_string (Experiment.Json.float_repr f)))
    [ 0.1; 1.0 /. 3.0; 1e-300; 6.02214076e23; -2.5 ]

let test_json_strip_member () =
  let open Experiment.Json in
  let doc =
    Obj
      [
        ("keep", Int 1);
        ("wall_seconds", Float 1.5);
        ( "nested",
          List [ Obj [ ("phase_seconds", Float 0.1); ("steps", Int 7) ] ] );
      ]
  in
  let stripped = strip_keys ~keys:[ "wall_seconds"; "phase_seconds" ] doc in
  Alcotest.(check string)
    "timing keys removed at every depth"
    "{\"keep\":1,\"nested\":[{\"steps\":7}]}"
    (to_string ~indent:0 stripped);
  Alcotest.(check bool) "member hit" true (member "keep" doc <> None);
  Alcotest.(check bool) "member miss" true (member "gone" doc = None);
  Alcotest.(check bool) "member on non-obj" true (member "x" (Int 3) = None)

let test_json_parse () =
  let open Experiment.Json in
  let ok s =
    match of_string s with
    | Ok v -> v
    | Error msg -> Alcotest.failf "%S should parse: %s" s msg
  in
  Alcotest.(check bool)
    "scalars" true
    (ok "  null " = Null
    && ok "true" = Bool true
    && ok "-42" = Int (-42)
    && ok "2.5e2" = Float 250.
    && ok "\"a\\u0041\\n\"" = String "aA\n");
  Alcotest.(check bool)
    "containers" true
    (ok "[1, [], {\"k\": false}]" = List [ Int 1; List []; Obj [ ("k", Bool false) ] ]);
  (* Inverse pair: serialize-then-parse is the identity, at any indent. *)
  let doc =
    Obj
      [
        ("s", String "quote\"back\\slash\twide \xe2\x9c\x93");
        ("xs", List [ Int 0; Float 0.1; Null; Bool true ]);
        ("empty", Obj []);
      ]
  in
  Alcotest.(check bool) "round-trip pretty" true (ok (to_string doc) = doc);
  Alcotest.(check bool)
    "round-trip compact" true
    (ok (to_string ~indent:0 doc) = doc);
  (* Surrogate pairs decode to UTF-8. *)
  Alcotest.(check bool)
    "surrogate pair" true
    (ok "\"\\ud83d\\ude00\"" = String "\xf0\x9f\x98\x80");
  let rejects s =
    match of_string s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool)
    "malformed inputs rejected" true
    (List.for_all rejects
       [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "1 2"; "\"\\ud83d\""; "\"unterminated" ])

(* --- Driver / sinks -------------------------------------------------- *)

(* A tiny synthetic spec so sink tests do not pay for a real
   experiment's measurement loop. *)
let toy_spec =
  Experiment.Spec.v ~id:"toy" ~claim:"synthetic sink test"
    ~tags:[ "test" ] ~auto_heading:false
    (fun ctx ->
      let t =
        Experiment.Ctx.table ctx ~title:"Toy table" ~columns:[ "n"; "v" ]
      in
      Experiment.Ctx.row ~values:[ ("v", 1.5) ] t [ "1"; "1.5" ];
      Experiment.Ctx.note t "toy note";
      Experiment.Ctx.emit ctx t)

let test_json_sink_writes_file () =
  let dir = fresh_tmp_dir () in
  let config =
    { Experiment.Config.default with json_dir = Some dir; seed = 42 }
  in
  let doc = Experiment.Driver.run ~banner:false ~config [ toy_spec ] in
  let path = Filename.concat dir Experiment.Driver.results_file in
  Alcotest.(check bool) "BENCH_RESULTS.json written" true (Sys.file_exists path);
  let ic = open_in_bin path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    "schema marker present" true
    (contains contents "repro.bench-results/3");
  Alcotest.(check string)
    "file matches the returned document"
    (Experiment.Json.to_string doc ^ "\n")
    contents;
  (* The v2 telemetry section exists even in an untraced run (with
     tracing reported off) and disappears from the deterministic view. *)
  (match Experiment.Json.member "telemetry" doc with
  | Some tele -> (
      match Experiment.Json.member "tracing" tele with
      | Some (Experiment.Json.Bool false) -> ()
      | _ -> Alcotest.fail "telemetry.tracing should be false here")
  | None -> Alcotest.fail "v2 document lacks the telemetry section");
  Alcotest.(check bool)
    "deterministic view strips telemetry" true
    (Experiment.Json.member "telemetry"
       (Experiment.Driver.deterministic_view doc)
    = None)

let test_selection () =
  let specs = Experiments.Registry.all in
  (match Experiment.Driver.select specs ~ids:[ "e1"; "nope"; "bogus" ] ~tags:[] with
  | Error (Experiment.Driver.Unknown_ids bad) ->
      Alcotest.(check (list string)) "unknown ids reported" [ "nope"; "bogus" ] bad
  | _ -> Alcotest.fail "expected Unknown_ids");
  (match Experiment.Driver.select specs ~ids:[] ~tags:[ "no-such-tag" ] with
  | Error (Experiment.Driver.Unknown_tags bad) ->
      Alcotest.(check (list string))
        "unknown tags reported" [ "no-such-tag" ] bad
  | _ -> Alcotest.fail "expected Unknown_tags");
  (match Experiment.Driver.select specs ~ids:[ "e1" ] ~tags:[ "rbb" ] with
  | Error Experiment.Driver.Empty_selection -> ()
  | _ -> Alcotest.fail "expected Empty_selection (valid tag, empty base)");
  (match Experiment.Driver.select specs ~ids:[] ~tags:[ "rbb" ] with
  | Ok sel ->
      Alcotest.(check (list string))
        "the rbb tag selects exactly the RBB experiments" [ "e24"; "e25" ]
        (List.map (fun s -> s.Experiment.Spec.id) sel)
  | _ -> Alcotest.fail "rbb tag selection should succeed");
  match Experiment.Driver.select specs ~ids:[ "e8"; "e1" ] ~tags:[] with
  | Ok [ a; b ] ->
      Alcotest.(check string) "order preserved" "e8" a.Experiment.Spec.id;
      Alcotest.(check string) "order preserved" "e1" b.Experiment.Spec.id
  | _ -> Alcotest.fail "expected two specs in the given order"

let test_registry_complete () =
  let ids = List.map (fun s -> s.Experiment.Spec.id) Experiments.Registry.all in
  let expected =
    List.init 25 (fun i -> Printf.sprintf "e%d" (i + 1)) @ [ "micro" ]
  in
  Alcotest.(check (list string)) "all 25 experiments plus micro" expected ids;
  let defaults =
    List.filter (fun s -> s.Experiment.Spec.default) Experiments.Registry.all
  in
  Alcotest.(check int) "e23 and micro are opt-in" 24 (List.length defaults)

(* Regression: the --tags filter applies before the run, so the JSON
   sink only ever sees the selected specs — the document must agree with
   the filtered stdout, not list every registered experiment. *)
let test_tags_filter_reaches_json_sink () =
  let mk id tags =
    Experiment.Spec.v ~id ~claim:"tag filter test" ~tags ~auto_heading:false
      (fun ctx ->
        let t =
          Experiment.Ctx.table ctx ~title:("tbl-" ^ id) ~columns:[ "n" ]
        in
        Experiment.Ctx.row t [ "1" ];
        Experiment.Ctx.emit ctx t)
  in
  let specs = [ mk "t1" [ "keep" ]; mk "t2" [ "drop" ] ] in
  match Experiment.Driver.select specs ~ids:[] ~tags:[ "keep" ] with
  | Error _ -> Alcotest.fail "selection should succeed"
  | Ok selected ->
      let config = Experiment.Config.default in
      let doc = Experiment.Driver.run ~banner:false ~config selected in
      let ids =
        match Experiment.Json.member "experiments" doc with
        | Some (Experiment.Json.List es) ->
            List.filter_map
              (fun e ->
                match Experiment.Json.member "id" e with
                | Some (Experiment.Json.String id) -> Some id
                | _ -> None)
              es
        | _ -> Alcotest.fail "document lacks the experiments list"
      in
      Alcotest.(check (list string))
        "JSON sink holds exactly the tag-selected specs" [ "t1" ] ids

(* The framework's core determinism contract: the same seed yields the
   same JSON result records whatever the domain fan-out, once
   wall-clock fields are stripped. *)
let test_determinism_across_domains () =
  let e1 =
    List.find (fun s -> s.Experiment.Spec.id = "e1") Experiments.Registry.all
  in
  let run domains =
    let config = { Experiment.Config.default with domains } in
    let doc = Experiment.Driver.run ~banner:false ~config [ e1 ] in
    Experiment.Json.to_string (Experiment.Driver.deterministic_view doc)
  in
  Alcotest.(check string)
    "domains=1 and domains=4 agree on the deterministic view"
    (run 1) (run 4)

let suite =
  [
    ("mkdir_p nested", test_mkdir_p_nested);
    ("mkdir_p race", test_mkdir_p_race);
    ("mkdir_p file conflict", test_mkdir_p_file_conflict);
    ("write_file", test_write_file);
    ("sanitize component", test_sanitize_component);
    ("json escaping", test_json_escaping);
    ("json layout", test_json_layout);
    ("json floats", test_json_floats);
    ("json strip/member", test_json_strip_member);
    ("json parse", test_json_parse);
    ("json sink file", test_json_sink_writes_file);
    ("selection", test_selection);
    ("registry complete", test_registry_complete);
    ("tags filter reaches json sink", test_tags_filter_reaches_json_sink);
    ("determinism across domains", test_determinism_across_domains);
  ]
  |> List.map (fun (name, f) -> (name, `Quick, f))
