(* The serve layer's contracts: batch- and domain-invariant cluster
   application, wire codec round-trips, and the crash-recovery law —
   snapshot + journal replay after an arbitrary kill (including a torn
   journal tail) restores a state whose subsequent replies are
   byte-identical to a service that never died. *)

let rng_of seed = Prng.Rng.create ~seed ()

let mk_config ?(seed = 0x5EED) ?(m_factor = 2) ?(repr = Core.Repr.Array_backed)
    ?(process = Serve.Process.Sequential) ~n ~shards () =
  {
    Serve.Cluster.n;
    m = m_factor * n;
    shards;
    process;
    scenario = (if seed land 1 = 0 then Core.Scenario.A else Core.Scenario.B);
    rule = Core.Scheduling_rule.abku 2;
    repr;
    seed;
  }

(* Keys come from raw 64-bit draws — negative and huge keys included,
   the regression surface of the router's hash truncation. *)
let gen_event g =
  match Prng.Rng.int g 100 with
  | r when r < 40 -> Engine.Event.Insert (Int64.to_int (Prng.Rng.bits64 g))
  | r when r < 80 -> Engine.Event.Remove
  | r when r < 88 -> Engine.Event.Step
  | r when r < 93 -> Engine.Event.Probe
  | r when r < 97 -> Engine.Event.Watermark
  | _ -> Engine.Event.Occupancy

let gen_events g k = Array.init k (fun _ -> gen_event g)

(* Round-synchronous clusters reject Step/Remove by contract, so their
   random streams draw from the rbb vocabulary instead. *)
let gen_rbb_event g =
  match Prng.Rng.int g 100 with
  | r when r < 40 -> Engine.Event.Round
  | r when r < 70 -> Engine.Event.Insert (Int64.to_int (Prng.Rng.bits64 g))
  | r when r < 80 -> Engine.Event.Probe
  | r when r < 90 -> Engine.Event.Watermark
  | _ -> Engine.Event.Occupancy

let gen_rbb_events g k = Array.init k (fun _ -> gen_rbb_event g)

let random_chunks g events =
  let n = Array.length events in
  if n = 0 then []
  else begin
    let rec go pos acc =
      if pos >= n then List.rev acc
      else begin
        let len = 1 + Prng.Rng.int g (min 16 (n - pos)) in
        go (pos + len) (Array.sub events pos len :: acc)
      end
    in
    go 0 []
  end

let apply_chunks cluster chunks =
  Array.concat (List.map (Serve.Cluster.apply_batch cluster) chunks)

(* {2 Temp state directories} *)

let fresh_dir =
  let k = ref 0 in
  fun () ->
    incr k;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "repro-serve-test-%d-%d" (Unix.getpid ()) !k)

let rec rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let with_dir f =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let store_exn ?snapshot_every ~dir config =
  match Serve.Store.open_ ?snapshot_every ~dir config with
  | Ok s -> s
  | Error msg -> Alcotest.failf "Store.open_: %s" msg

(* {2 Cluster invariance properties} *)

let qcheck_batch_invariance =
  QCheck.Test.make ~name:"cluster state independent of batching" ~count:150
    QCheck.(triple small_int (int_range 4 48) (int_range 1 4))
    (fun (seed, n, shards) ->
      let shards = min shards n in
      let config = mk_config ~seed ~n ~shards () in
      let g = rng_of (seed + 17) in
      let events = gen_events g (Prng.Rng.int g 200) in
      let one = Serve.Cluster.create config in
      let replies_one = Serve.Cluster.apply_batch one events in
      let single = Serve.Cluster.create config in
      let replies_single = Array.map (Serve.Cluster.apply single) events in
      let chunked = Serve.Cluster.create config in
      let replies_chunked = apply_chunks chunked (random_chunks g events) in
      Serve.Cluster.state one = Serve.Cluster.state single
      && Serve.Cluster.state one = Serve.Cluster.state chunked
      && replies_one = replies_single
      && replies_one = replies_chunked)

let qcheck_pool_invariance =
  QCheck.Test.make ~name:"cluster state independent of domains" ~count:40
    QCheck.(pair small_int (int_range 4 32))
    (fun (seed, n) ->
      let config = mk_config ~seed ~n ~shards:(min 4 n) () in
      let g = rng_of (seed + 23) in
      let events = gen_events g (Prng.Rng.int g 150) in
      let serial = Serve.Cluster.create config in
      let replies_serial = Serve.Cluster.apply_batch serial events in
      Parallel.Pool.with_pool ~domains:3 (fun pool ->
          let fanned = Serve.Cluster.create ~pool config in
          let replies_fanned = Serve.Cluster.apply_batch fanned events in
          Serve.Cluster.state serial = Serve.Cluster.state fanned
          && replies_serial = replies_fanned))

let state_roundtrip_prop ?repr ?process ?(gen = gen_events) (seed, n, shards) =
      let shards = min shards n in
      let config = mk_config ~seed ?repr ?process ~n ~shards () in
      let g = rng_of (seed + 31) in
      let cluster = Serve.Cluster.create config in
      ignore (Serve.Cluster.apply_batch cluster (gen g 80));
      let st = Serve.Cluster.state cluster in
      let revived = Serve.Cluster.of_state config st in
      (* Same snapshot, and same behaviour afterwards. *)
      let tail = gen g 40 in
      let a = Serve.Cluster.apply_batch cluster tail in
      let b = Serve.Cluster.apply_batch revived tail in
      st = Serve.Cluster.state (Serve.Cluster.of_state config st)
      && a = b
      && Serve.Cluster.state cluster = Serve.Cluster.state revived

let qcheck_state_roundtrip =
  QCheck.Test.make ~name:"cluster of_state . state is the identity" ~count:100
    QCheck.(triple small_int (int_range 4 40) (int_range 1 4))
    state_roundtrip_prop

(* The counts-sampled backend samples the per-level bucket orders, so
   the /3 snapshot's [sn_levels] must carry them: without that, replies
   after a restore would diverge from the never-restored cluster. *)
let qcheck_sampled_state_roundtrip =
  QCheck.Test.make
    ~name:"sampled-repr of_state . state is the identity" ~count:80
    QCheck.(triple small_int (int_range 4 40) (int_range 1 4))
    (state_roundtrip_prop ~repr:Core.Repr.Count_sampled)

let qcheck_rbb_state_roundtrip =
  QCheck.Test.make
    ~name:"rbb cluster of_state . state is the identity" ~count:80
    QCheck.(triple small_int (int_range 4 40) (int_range 1 4))
    (state_roundtrip_prop ~process:Serve.Process.Rbb ~gen:gen_rbb_events)

(* {2 Crash-recovery properties} *)

let kill_and_restore_prop ?repr ?process ?(gen = gen_events)
    (seed, n, shards, snapshot_every) =
      let shards = min shards n in
      let config = mk_config ~seed ?repr ?process ~n ~shards () in
      let g = rng_of (seed + 41) in
      let chunks = random_chunks g (gen g (20 + Prng.Rng.int g 150)) in
      let cut = Prng.Rng.int g (List.length chunks + 1) in
      let before = List.filteri (fun i _ -> i < cut) chunks in
      let after = List.filteri (fun i _ -> i >= cut) chunks in
      (* Reference: an in-memory cluster that never dies. *)
      let reference = Serve.Cluster.create config in
      ignore (apply_chunks reference before);
      with_dir (fun dir ->
          let victim = store_exn ~snapshot_every ~dir config in
          ignore
            (List.map (Serve.Store.apply_batch victim) before
              : Engine.Event.reply array list);
          (* Kill: abandon the store without close (no final snapshot);
             the journal was flushed batch by batch. *)
          let revived = store_exn ~snapshot_every ~dir config in
          let restored_ok =
            Serve.Cluster.state (Serve.Store.cluster revived)
            = Serve.Cluster.state reference
          in
          (* The surviving stream must produce byte-identical replies. *)
          let ref_replies = apply_chunks reference after in
          let rev_replies =
            Array.concat (List.map (Serve.Store.apply_batch revived) after)
          in
          Serve.Store.close revived;
          (* A clean close snapshots: reopening restores too. *)
          let reopened = store_exn ~snapshot_every ~dir config in
          let final_ok =
            Serve.Cluster.state (Serve.Store.cluster reopened)
            = Serve.Cluster.state reference
          in
          Serve.Store.close reopened;
          restored_ok && ref_replies = rev_replies && final_ok)

let qcheck_kill_and_restore =
  QCheck.Test.make
    ~name:"store restore after kill replays to the never-killed state"
    ~count:60
    QCheck.(quad small_int (int_range 4 32) (int_range 1 4) (int_range 1 60))
    kill_and_restore_prop

let qcheck_sampled_kill_and_restore =
  QCheck.Test.make
    ~name:"sampled-repr store restore replays to the never-killed state"
    ~count:40
    QCheck.(quad small_int (int_range 4 32) (int_range 1 4) (int_range 1 60))
    (kill_and_restore_prop ~repr:Core.Repr.Count_sampled)

(* Round records ride the journal (tag 3) and the /4 snapshot carries
   the process field: an rbb shard cluster must replay through a kill
   exactly like a sequential one. *)
let qcheck_rbb_kill_and_restore =
  QCheck.Test.make
    ~name:"rbb store restore replays rounds to the never-killed state"
    ~count:40
    QCheck.(quad small_int (int_range 4 32) (int_range 1 4) (int_range 1 60))
    (kill_and_restore_prop ~process:Serve.Process.Rbb ~gen:gen_rbb_events)

let qcheck_torn_tail =
  QCheck.Test.make
    ~name:"a torn journal tail is dropped, not misread" ~count:60
    QCheck.(triple small_int (int_range 4 24) (int_range 1 20))
    (fun (seed, n, garbage_len) ->
      let config = mk_config ~seed ~n ~shards:(min 2 n) () in
      let g = rng_of (seed + 59) in
      let chunks = random_chunks g (gen_events g (10 + Prng.Rng.int g 80)) in
      let reference = Serve.Cluster.create config in
      ignore (apply_chunks reference chunks);
      with_dir (fun dir ->
          let victim = store_exn ~snapshot_every:1_000_000 ~dir config in
          ignore
            (List.map (Serve.Store.apply_batch victim) chunks
              : Engine.Event.reply array list);
          (* Kill mid-append: either raw garbage or a strict prefix of a
             plausible next record (seq, count, one Step tag, no
             trailer), depending on the seed. *)
          let journal = Filename.concat dir "journal.bin" in
          let ch =
            open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 journal
          in
          if seed land 1 = 0 then
            for _ = 1 to garbage_len do
              output_char ch '\xFF'
            done
          else begin
            let b = Bytes.create 17 in
            Bytes.set_int64_le b 0 (Int64.of_int (Serve.Store.seq victim));
            Bytes.set_int64_le b 8 1L;
            Bytes.set b 16 '\000';
            output_bytes ch (Bytes.sub b 0 (min 17 (1 + garbage_len)))
          end;
          close_out ch;
          let revived = store_exn ~dir config in
          let ok =
            Serve.Cluster.state (Serve.Store.cluster revived)
            = Serve.Cluster.state reference
          in
          (* And the truncated journal accepts appends again. *)
          let tail = gen_events g 20 in
          let a = Serve.Store.apply_batch revived tail in
          let b = Serve.Cluster.apply_batch reference tail in
          Serve.Store.close revived;
          ok && a = b))

(* {2 Unit tests} *)

let test_initial_queries () =
  let config = mk_config ~seed:2 ~n:8 ~shards:2 () in
  let cluster = Serve.Cluster.create config in
  (match Serve.Cluster.apply cluster Engine.Event.Occupancy with
  | Engine.Event.Loads loads ->
      Alcotest.(check int) "bins" 8 (Array.length loads);
      Alcotest.(check int) "balls" 16 (Array.fold_left ( + ) 0 loads)
  | r -> Alcotest.failf "unexpected %s" (Engine.Event.reply_name r));
  (match Serve.Cluster.apply cluster Engine.Event.Probe with
  | Engine.Event.Level l -> Alcotest.(check int) "uniform max" 2 l
  | r -> Alcotest.failf "unexpected %s" (Engine.Event.reply_name r));
  match Serve.Cluster.apply cluster Engine.Event.Watermark with
  | Engine.Event.Level l -> Alcotest.(check int) "watermark seeded" 2 l
  | r -> Alcotest.failf "unexpected %s" (Engine.Event.reply_name r)

(* The round-synchronous vocabulary split: an rbb cluster broadcasts
   Round to every shard (one Ack, balls conserved) and rejects the
   sequential mutations; a sequential cluster rejects Round. *)
let test_rbb_cluster_vocabulary () =
  let config =
    { (mk_config ~seed:6 ~n:8 ~shards:3 ()) with
      process = Serve.Process.Rbb }
  in
  let cluster = Serve.Cluster.create config in
  for _ = 1 to 5 do
    match Serve.Cluster.apply cluster Engine.Event.Round with
    | Engine.Event.Ack -> ()
    | r -> Alcotest.failf "expected Ack, got %s" (Engine.Event.reply_name r)
  done;
  (match Serve.Cluster.apply cluster Engine.Event.Step with
  | Engine.Event.Rejected _ -> ()
  | r -> Alcotest.failf "expected Rejected, got %s" (Engine.Event.reply_name r));
  (match Serve.Cluster.apply cluster Engine.Event.Remove with
  | Engine.Event.Rejected _ -> ()
  | r -> Alcotest.failf "expected Rejected, got %s" (Engine.Event.reply_name r));
  (match Serve.Cluster.apply cluster (Engine.Event.Insert 7) with
  | Engine.Event.Placed bin ->
      Alcotest.(check bool) "global bin id" true (bin >= 0 && bin < 8)
  | r -> Alcotest.failf "expected Placed, got %s" (Engine.Event.reply_name r));
  (match Serve.Cluster.apply cluster Engine.Event.Occupancy with
  | Engine.Event.Loads loads ->
      Alcotest.(check int) "rounds conserve, insert adds one" 17
        (Array.fold_left ( + ) 0 loads)
  | r -> Alcotest.failf "expected Loads, got %s" (Engine.Event.reply_name r));
  let sequential = Serve.Cluster.create (mk_config ~seed:6 ~n:8 ~shards:3 ()) in
  match Serve.Cluster.apply sequential Engine.Event.Round with
  | Engine.Event.Rejected _ -> ()
  | r -> Alcotest.failf "expected Rejected, got %s" (Engine.Event.reply_name r)

let test_drained_cluster_rejects () =
  let config = mk_config ~seed:4 ~n:4 ~shards:2 ~m_factor:1 () in
  let cluster = Serve.Cluster.create config in
  for _ = 1 to 4 do
    match Serve.Cluster.apply cluster Engine.Event.Remove with
    | Engine.Event.Removed _ -> ()
    | r -> Alcotest.failf "expected Removed, got %s" (Engine.Event.reply_name r)
  done;
  (match Serve.Cluster.apply cluster Engine.Event.Remove with
  | Engine.Event.Rejected _ -> ()
  | r -> Alcotest.failf "expected Rejected, got %s" (Engine.Event.reply_name r));
  (match Serve.Cluster.apply cluster Engine.Event.Step with
  | Engine.Event.Rejected _ -> ()
  | r -> Alcotest.failf "expected Rejected, got %s" (Engine.Event.reply_name r));
  (* Rejections consume no randomness and the service keeps going. *)
  match Serve.Cluster.apply cluster (Engine.Event.Insert 42) with
  | Engine.Event.Placed bin ->
      Alcotest.(check bool) "global bin id" true (bin >= 0 && bin < 4)
  | r -> Alcotest.failf "expected Placed, got %s" (Engine.Event.reply_name r)

let test_extreme_insert_keys () =
  let config = mk_config ~seed:6 ~n:16 ~shards:3 () in
  let cluster = Serve.Cluster.create config in
  List.iter
    (fun key ->
      match Serve.Cluster.apply cluster (Engine.Event.Insert key) with
      | Engine.Event.Placed bin ->
          Alcotest.(check bool)
            (Printf.sprintf "key %d lands in range" key)
            true (bin >= 0 && bin < 16)
      | r -> Alcotest.failf "expected Placed, got %s" (Engine.Event.reply_name r))
    [ 0; -1; max_int; min_int; 0x9E3779B9 ]

let test_fingerprint_mismatch () =
  let config = mk_config ~seed:8 ~n:8 ~shards:2 () in
  with_dir (fun dir ->
      let s = store_exn ~dir config in
      ignore (Serve.Store.apply_batch s (gen_events (rng_of 9) 30));
      Serve.Store.close s;
      (match Serve.Store.open_ ~dir { config with seed = config.seed + 1 } with
      | Error _ -> ()
      | Ok s ->
          Serve.Store.close s;
          Alcotest.fail "foreign state directory was accepted");
      (* The representation backend is part of the fingerprint too: a
         sampled-repr service must not adopt an array-repr directory. *)
      match Serve.Store.open_ ~dir { config with repr = Core.Repr.Count_sampled }
      with
      | Error _ -> ()
      | Ok s ->
          Serve.Store.close s;
          Alcotest.fail "state directory with another repr was accepted")

let test_rng_save_restore () =
  let g = rng_of 123 in
  for _ = 1 to 57 do
    ignore (Prng.Rng.bits64 g)
  done;
  let words = Prng.Rng.save g in
  let h = Prng.Rng.restore words in
  for i = 1 to 100 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d" i)
      (Prng.Rng.bits64 g) (Prng.Rng.bits64 h)
  done;
  Alcotest.check_raises "restore wants 5 words"
    (Invalid_argument "Rng.restore: need 5 words") (fun () ->
      ignore (Prng.Rng.restore [| 1L; 2L |]))

(* {2 Wire codec} *)

let test_wire_parse () =
  let ok line expected_id expected_req =
    match Serve.Wire.parse line with
    | Ok (id, req) ->
        Alcotest.(check (option int)) (line ^ " id") expected_id id;
        if req <> expected_req then Alcotest.failf "%s parsed wrong" line
    | Error msg -> Alcotest.failf "%s: %s" line msg
  in
  ok {|{"op":"insert","key":5,"id":3}|} (Some 3)
    (Serve.Wire.Event (Engine.Event.Insert 5));
  ok {|{"op":"remove"}|} None (Serve.Wire.Event Engine.Event.Remove);
  ok {|{"op":"step","id":0}|} (Some 0) (Serve.Wire.Event Engine.Event.Step);
  ok {|{"op":"probe"}|} None (Serve.Wire.Event Engine.Event.Probe);
  ok {|{"op":"occupancy"}|} None (Serve.Wire.Event Engine.Event.Occupancy);
  ok {|{"op":"watermark"}|} None (Serve.Wire.Event Engine.Event.Watermark);
  ok {|{"op":"ping"}|} None Serve.Wire.Ping;
  ok {|{"op":"metrics","id":9}|} (Some 9) Serve.Wire.Metrics;
  ok {|{"op":"stats"}|} None (Serve.Wire.Stats Serve.Wire.Stats_json);
  ok {|{"op":"stats","format":"json","id":4}|} (Some 4)
    (Serve.Wire.Stats Serve.Wire.Stats_json);
  ok {|{"op":"stats","format":"prom"}|} None
    (Serve.Wire.Stats Serve.Wire.Stats_prom);
  List.iter
    (fun line ->
      match Serve.Wire.parse line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s should not parse" line)
    [
      {|{"op":"insert"}|};  (* key required *)
      {|{"op":"fly"}|};
      {|{"op":"stats","format":"xml"}|};
      {|{"op":"stats","format":7}|};
      {|{"key":5}|};
      "not json";
    ]

(* {2 Telemetry} *)

let jget doc k =
  match Experiment.Json.member k doc with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S" k

let jint doc k =
  match jget doc k with
  | Experiment.Json.Int i -> i
  | _ -> Alcotest.failf "field %S is not an int" k

let jfloat doc k =
  match jget doc k with
  | Experiment.Json.Float f -> f
  | Experiment.Json.Int i -> float_of_int i
  | _ -> Alcotest.failf "field %S is not a number" k

let mk_totals =
  { Serve.Telemetry.connections = 4; live = 2; requests = 51; events = 40;
    errors = 1; rounds = 9 }

let mk_cluster_gauges =
  { Serve.Telemetry.seq = 40; balls_total = 11; max_load = 3; watermark = 4 }

let mk_shard_gauges s =
  { Serve.Telemetry.shard = s; bins = 8; balls = 5; shard_max_load = 2;
    shard_watermark = 3; applied = 20; queue_depth = s }

let populated_telemetry () =
  let tel = Serve.Telemetry.create ~shards:2 in
  for i = 1 to 50 do
    Serve.Telemetry.observe_stage tel Serve.Telemetry.Decode
      ~op:Serve.Telemetry.op_ping
      (Int64.of_int (100 * i));
    Serve.Telemetry.observe_latency tel ~op:Serve.Telemetry.op_ping
      (Int64.of_int (1000 * i))
  done;
  Serve.Telemetry.observe_latency tel ~op:Serve.Telemetry.op_stats 5_000L;
  Serve.Telemetry.observe_batch tel 64;
  Serve.Telemetry.observe_round tel 5_000L;
  Serve.Telemetry.observe_drain tel ~shard:1 ~depth:3 700L;
  tel

let test_telemetry_report_json () =
  let tel = populated_telemetry () in
  let doc =
    Experiment.Json.Obj
      (Serve.Telemetry.report_json tel ~totals:mk_totals
         ~cluster:mk_cluster_gauges
         ~shards:[ mk_shard_gauges 0; mk_shard_gauges 1 ]
         ~durability:None)
  in
  Alcotest.(check int) "requests" 51 (jint doc "requests");
  Alcotest.(check int) "seq" 40 (jint doc "seq");
  Alcotest.(check bool) "uptime present" true (jfloat doc "uptime_s" >= 0.);
  let ops = jget doc "ops" in
  let ping = jget ops "ping" in
  let lat = jget ping "latency_ns" in
  Alcotest.(check int) "ping latency count" 50 (jint lat "count");
  Alcotest.(check bool) "percentiles are monotone" true
    (jfloat lat "p50" <= jfloat lat "p99"
    && jfloat lat "p99" <= jfloat lat "p999");
  Alcotest.(check bool) "decode stage recorded" true
    (Experiment.Json.member "stage_ns_decode" ping <> None);
  Alcotest.(check bool) "silent ops omitted" true
    (Experiment.Json.member "step" ops = None);
  (match jget doc "shards" with
  | Experiment.Json.List [ _; s1 ] ->
      Alcotest.(check int) "shard 1 drain count" 1
        (jint (jget s1 "drain_ns") "count");
      Alcotest.(check int) "shard 1 queue depth" 1 (jint s1 "queue_depth")
  | _ -> Alcotest.fail "shards is not a 2-list");
  Alcotest.(check bool) "no durability section for ephemeral" true
    (Experiment.Json.member "durability" doc = None)

let count_substring ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let k = ref 0 in
  for i = 0 to hl - nl do
    if String.sub hay i nl = needle then incr k
  done;
  !k

let test_telemetry_report_prom () =
  let tel = populated_telemetry () in
  let durability =
    Some
      { Serve.Telemetry.journal_bytes = 1234; flush_age_s = 0.5;
        sync_age_s = None; snapshot_seq = 30; snapshot_age_s = 2.0;
        since_snapshot = 10 }
  in
  let text =
    Serve.Telemetry.report_prom tel ~totals:mk_totals
      ~cluster:mk_cluster_gauges
      ~shards:[ mk_shard_gauges 0; mk_shard_gauges 1 ]
      ~durability
  in
  let contains needle = count_substring ~needle text > 0 in
  Alcotest.(check bool) "uptime help line" true
    (contains "# HELP repro_serve_uptime_seconds");
  Alcotest.(check bool) "quantile sample" true
    (contains "repro_serve_latency_ns{op=\"ping\",quantile=\"0.99\"}");
  Alcotest.(check bool) "count companion" true
    (contains "repro_serve_latency_ns_count{op=\"ping\"} 50");
  Alcotest.(check bool) "journal gauge" true
    (contains "repro_serve_journal_bytes 1234");
  Alcotest.(check bool) "never-synced gauge omitted" false
    (contains "repro_serve_journal_sync_age_seconds");
  (* Two ops and two shards share metric families: HELP/TYPE must not
     repeat. *)
  Alcotest.(check int) "latency family declared once" 1
    (count_substring ~needle:"# TYPE repro_serve_latency_ns gauge" text);
  Alcotest.(check int) "drain family declared once" 1
    (count_substring ~needle:"# TYPE repro_serve_shard_drain_ns gauge" text);
  Alcotest.(check bool) "ends with a newline" true
    (String.length text > 0 && text.[String.length text - 1] = '\n')

let test_cluster_stage_telemetry () =
  let config = mk_config ~n:32 ~shards:2 () in
  let g = rng_of 99 in
  let events = Array.append (gen_events g 60) [| Engine.Event.Probe |] in
  let plain = Serve.Cluster.create config in
  let replies_plain = Serve.Cluster.apply_batch plain events in
  let cluster = Serve.Cluster.create config in
  let tel = Serve.Telemetry.create ~shards:2 in
  Serve.Cluster.set_telemetry cluster tel;
  let replies_tel = Serve.Cluster.apply_batch cluster events in
  Alcotest.(check bool) "telemetry does not change replies" true
    (replies_plain = replies_tel);
  Alcotest.(check bool) "telemetry does not change state" true
    (Serve.Cluster.state plain = Serve.Cluster.state cluster);
  Alcotest.(check (list int)) "probe barrier drained every queue" [ 0; 0 ]
    (Array.to_list (Serve.Cluster.queue_depths cluster));
  let muts =
    Array.fold_left
      (fun k ev -> if Engine.Event.is_mutation ev then k + 1 else k)
      0 events
  in
  let doc =
    Experiment.Json.Obj
      (Serve.Telemetry.report_json tel ~totals:mk_totals
         ~cluster:mk_cluster_gauges
         ~shards:[ mk_shard_gauges 0; mk_shard_gauges 1 ]
         ~durability:None)
  in
  let ops =
    match jget doc "ops" with
    | Experiment.Json.Obj kvs -> kvs
    | _ -> Alcotest.fail "ops is not an object"
  in
  let stage_count stage =
    List.fold_left
      (fun acc (_, op) ->
        match Experiment.Json.member ("stage_ns_" ^ stage) op with
        | Some h -> acc + jint h "count"
        | None -> acc)
      0 ops
  in
  Alcotest.(check int) "every mutation routed through the Route stage" muts
    (stage_count "route");
  Alcotest.(check bool) "Apply stage recorded work" true
    (stage_count "apply" > 0)

let test_store_durability_gauges () =
  with_dir (fun dir ->
      let config = mk_config ~n:16 ~shards:2 () in
      let store = store_exn ~dir config in
      let d0 = Serve.Store.durability store in
      Alcotest.(check int) "fresh store has nothing pending" 0
        d0.Serve.Telemetry.since_snapshot;
      Alcotest.(check bool) "never fsynced without --sync" true
        (d0.Serve.Telemetry.sync_age_s = None);
      let muts = Array.init 10 (fun i -> Engine.Event.Insert i) in
      ignore (Serve.Store.apply_batch store muts);
      let d1 = Serve.Store.durability store in
      Alcotest.(check int) "mutations pending a snapshot" 10
        d1.Serve.Telemetry.since_snapshot;
      Alcotest.(check bool) "journal grew" true
        (d1.Serve.Telemetry.journal_bytes > d0.Serve.Telemetry.journal_bytes);
      Alcotest.(check bool) "flush age is sane" true
        (d1.Serve.Telemetry.flush_age_s >= 0.
        && d1.Serve.Telemetry.snapshot_age_s >= 0.);
      Serve.Store.snapshot_now store;
      let d2 = Serve.Store.durability store in
      Alcotest.(check int) "snapshot covers everything" 0
        d2.Serve.Telemetry.since_snapshot;
      Alcotest.(check int) "snapshot seq advanced" 10
        d2.Serve.Telemetry.snapshot_seq;
      Serve.Store.close store)

let test_wire_format () =
  let line ?id reply =
    let buf = Buffer.create 64 in
    Serve.Wire.add_reply buf ~id reply;
    Buffer.contents buf
  in
  Alcotest.(check string) "ack" "{\"ok\":true,\"reply\":\"ack\"}\n"
    (line Engine.Event.Ack);
  Alcotest.(check string) "placed with id"
    "{\"id\":7,\"ok\":true,\"reply\":\"placed\",\"bin\":17}\n"
    (line ~id:7 (Engine.Event.Placed 17));
  Alcotest.(check string) "level"
    "{\"ok\":true,\"reply\":\"level\",\"value\":3}\n"
    (line (Engine.Event.Level 3));
  Alcotest.(check string) "loads"
    "{\"ok\":true,\"reply\":\"loads\",\"loads\":[1,0,2]}\n"
    (line (Engine.Event.Loads [| 1; 0; 2 |]));
  Alcotest.(check string) "rejected escapes"
    "{\"ok\":false,\"reply\":\"rejected\",\"error\":\"no \\\"x\\\"\"}\n"
    (line (Engine.Event.Rejected "no \"x\""));
  (* Formatted replies parse back as JSON. *)
  List.iter
    (fun reply ->
      let s = line reply in
      match Experiment.Json.of_string (String.trim s) with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%S: %s" s msg)
    [
      Engine.Event.Ack; Engine.Event.Placed 3; Engine.Event.Level (-1);
      Engine.Event.Loads [||]; Engine.Event.Rejected "empty";
    ]

let test_wire_address () =
  (match Serve.Wire.parse_address "unix:/tmp/x.sock" with
  | Ok (Serve.Wire.Unix_sock "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix address");
  (match Serve.Wire.parse_address "tcp:localhost:9090" with
  | Ok (Serve.Wire.Tcp ("localhost", 9090)) -> ()
  | _ -> Alcotest.fail "tcp address");
  (match Serve.Wire.parse_address "tcp::8080" with
  | Ok (Serve.Wire.Tcp ("127.0.0.1", 8080)) -> ()
  | _ -> Alcotest.fail "tcp default host");
  List.iter
    (fun s ->
      match Serve.Wire.parse_address s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%S should not parse" s)
    [ "unix:"; "tcp:"; "tcp:host:0"; "tcp:host:banana"; "http://x"; "" ]

let suite =
  [
    Alcotest.test_case "initial queries" `Quick test_initial_queries;
    Alcotest.test_case "drained cluster rejects, then recovers" `Quick
      test_drained_cluster_rejects;
    Alcotest.test_case "rbb cluster vocabulary" `Quick
      test_rbb_cluster_vocabulary;
    Alcotest.test_case "extreme insert keys route in range" `Quick
      test_extreme_insert_keys;
    Alcotest.test_case "foreign state directory is refused" `Quick
      test_fingerprint_mismatch;
    Alcotest.test_case "rng save/restore replays the stream" `Quick
      test_rng_save_restore;
    Alcotest.test_case "wire parse" `Quick test_wire_parse;
    Alcotest.test_case "wire format" `Quick test_wire_format;
    Alcotest.test_case "wire addresses" `Quick test_wire_address;
    Alcotest.test_case "telemetry json report" `Quick
      test_telemetry_report_json;
    Alcotest.test_case "telemetry prometheus exposition" `Quick
      test_telemetry_report_prom;
    Alcotest.test_case "cluster stage telemetry" `Quick
      test_cluster_stage_telemetry;
    Alcotest.test_case "store durability gauges" `Quick
      test_store_durability_gauges;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        qcheck_batch_invariance;
        qcheck_pool_invariance;
        qcheck_state_roundtrip;
        qcheck_sampled_state_roundtrip;
        qcheck_rbb_state_roundtrip;
        qcheck_kill_and_restore;
        qcheck_sampled_kill_and_restore;
        qcheck_rbb_kill_and_restore;
        qcheck_torn_tail;
      ]
