(* Tests for the PRNG substrate. *)

let rng ?(seed = 42) () = Prng.Rng.create ~seed ()

let test_determinism () =
  let a = rng () and b = rng () in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.Rng.bits64 a) (Prng.Rng.bits64 b)
  done

let test_copy_replays () =
  let a = rng () in
  ignore (Prng.Rng.bits64 a);
  let b = Prng.Rng.copy a in
  for _ = 1 to 50 do
    Alcotest.(check int64) "copy replays" (Prng.Rng.bits64 a) (Prng.Rng.bits64 b)
  done

let test_split_differs () =
  let a = rng () in
  let b = Prng.Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.Rng.bits64 a = Prng.Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "split streams differ" true (!same < 4)

let test_seed_changes_stream () =
  let a = Prng.Rng.create ~seed:1 () and b = Prng.Rng.create ~seed:2 () in
  Alcotest.(check bool) "different seeds"
    true
    (Prng.Rng.bits64 a <> Prng.Rng.bits64 b)

let test_int_bounds () =
  let g = rng () in
  for bound = 1 to 40 do
    for _ = 1 to 200 do
      let x = Prng.Rng.int g bound in
      if x < 0 || x >= bound then Alcotest.failf "out of range: %d/%d" x bound
    done
  done

let test_int_invalid () =
  let g = rng () in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Prng.Rng.int g 0))

let test_int_in () =
  let g = rng () in
  for _ = 1 to 500 do
    let x = Prng.Rng.int_in g (-5) 7 in
    if x < -5 || x > 7 then Alcotest.failf "int_in out of range: %d" x
  done;
  Alcotest.(check int) "singleton range" 3 (Prng.Rng.int_in g 3 3)

let test_float_range () =
  let g = rng () in
  for _ = 1 to 1000 do
    let x = Prng.Rng.float g in
    if not (x >= 0. && x < 1.) then Alcotest.failf "float out of range: %f" x
  done

let test_float_mean () =
  let g = rng () in
  let s = ref 0. in
  let reps = 20_000 in
  for _ = 1 to reps do
    s := !s +. Prng.Rng.float g
  done;
  let mean = !s /. float_of_int reps in
  Alcotest.(check bool) "mean near 1/2" true (Float.abs (mean -. 0.5) < 0.02)

let test_bool_balance () =
  let g = rng () in
  let heads = ref 0 in
  let reps = 20_000 in
  for _ = 1 to reps do
    if Prng.Rng.bool g then incr heads
  done;
  let frac = float_of_int !heads /. float_of_int reps in
  Alcotest.(check bool) "balanced coin" true (Float.abs (frac -. 0.5) < 0.02)

let test_bernoulli_edges () =
  let g = rng () in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Prng.Rng.bernoulli g 0.);
    Alcotest.(check bool) "p=1 always" true (Prng.Rng.bernoulli g 1.)
  done;
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Rng.bernoulli: p not in [0,1]") (fun () ->
      ignore (Prng.Rng.bernoulli g 1.5))

let test_geometric () =
  let g = rng () in
  for _ = 1 to 100 do
    Alcotest.(check int) "p=1 gives 0" 0 (Prng.Rng.geometric g 1.)
  done;
  let s = ref 0 in
  let reps = 20_000 in
  for _ = 1 to reps do
    s := !s + Prng.Rng.geometric g 0.5
  done;
  let mean = float_of_int !s /. float_of_int reps in
  (* Mean of failures before success at p = 1/2 is 1. *)
  Alcotest.(check bool) "geometric mean near 1" true (Float.abs (mean -. 1.) < 0.05);
  Alcotest.check_raises "p=0 invalid"
    (Invalid_argument "Rng.geometric: p not in (0,1]") (fun () ->
      ignore (Prng.Rng.geometric g 0.))

let test_pair_distinct () =
  let g = rng () in
  for _ = 1 to 1000 do
    let i, j = Prng.Rng.pair_distinct g 5 in
    if not (0 <= i && i < j && j < 5) then Alcotest.failf "bad pair %d %d" i j
  done;
  Alcotest.check_raises "n too small"
    (Invalid_argument "Rng.pair_distinct: need n >= 2") (fun () ->
      ignore (Prng.Rng.pair_distinct g 1))

let test_pair_uniform () =
  let g = rng () in
  let counts = Hashtbl.create 16 in
  let reps = 30_000 in
  for _ = 1 to reps do
    let p = Prng.Rng.pair_distinct g 4 in
    Hashtbl.replace counts p (1 + Option.value ~default:0 (Hashtbl.find_opt counts p))
  done;
  Alcotest.(check int) "all 6 pairs seen" 6 (Hashtbl.length counts);
  Hashtbl.iter
    (fun _ c ->
      let frac = float_of_int c /. float_of_int reps in
      if Float.abs (frac -. (1. /. 6.)) > 0.02 then
        Alcotest.failf "pair frequency off: %f" frac)
    counts

let test_shuffle_multiset () =
  let g = rng () in
  let a = Array.init 100 (fun i -> i) in
  let b = Array.copy a in
  Prng.Rng.shuffle_in_place g b;
  let sorted = Array.copy b in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" a sorted;
  Alcotest.(check bool) "actually shuffled" true (b <> a)

let test_xoshiro_jump () =
  let a = Prng.Xoshiro.of_seed 9L and b = Prng.Xoshiro.of_seed 9L in
  Prng.Xoshiro.jump b;
  (* Jumped stream diverges from the original... *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.Xoshiro.next a = Prng.Xoshiro.next b then incr same
  done;
  Alcotest.(check bool) "jump diverges" true (!same < 4);
  (* ...and jumping is deterministic. *)
  let c = Prng.Xoshiro.of_seed 9L and d = Prng.Xoshiro.of_seed 9L in
  Prng.Xoshiro.jump c;
  Prng.Xoshiro.jump d;
  Alcotest.(check int64) "deterministic" (Prng.Xoshiro.next c) (Prng.Xoshiro.next d)

let test_weighted_int () =
  let g = rng () in
  let counts = Array.make 3 0 in
  let reps = 30_000 in
  for _ = 1 to reps do
    let i = Prng.Dist.weighted_int g [| 1; 2; 7 |] in
    counts.(i) <- counts.(i) + 1
  done;
  let frac i = float_of_int counts.(i) /. float_of_int reps in
  Alcotest.(check bool) "w0 ~ 0.1" true (Float.abs (frac 0 -. 0.1) < 0.02);
  Alcotest.(check bool) "w2 ~ 0.7" true (Float.abs (frac 2 -. 0.7) < 0.02);
  Alcotest.check_raises "zero total" (Invalid_argument "Dist: zero total weight")
    (fun () -> ignore (Prng.Dist.weighted_int g [| 0; 0 |]))

let test_inverse_cdf () =
  let w = [| 1.; 2.; 1. |] in
  Alcotest.(check int) "low u" 0 (Prng.Dist.inverse_cdf w 0.0);
  Alcotest.(check int) "u=0.24" 0 (Prng.Dist.inverse_cdf w 0.24);
  Alcotest.(check int) "u=0.26" 1 (Prng.Dist.inverse_cdf w 0.26);
  Alcotest.(check int) "u=0.74" 1 (Prng.Dist.inverse_cdf w 0.74);
  Alcotest.(check int) "u=0.76" 2 (Prng.Dist.inverse_cdf w 0.76)

let test_alias_matches_weights () =
  let g = rng () in
  let w = [| 0.5; 0.125; 0.25; 0.125 |] in
  let alias = Prng.Dist.alias_of_weights w in
  let counts = Array.make 4 0 in
  let reps = 40_000 in
  for _ = 1 to reps do
    let i = Prng.Dist.alias_sample g alias in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i wi ->
      let frac = float_of_int counts.(i) /. float_of_int reps in
      if Float.abs (frac -. wi) > 0.02 then
        Alcotest.failf "alias frequency off at %d: %f vs %f" i frac wi)
    w

let test_weighted_skips_zeros () =
  let g = rng () in
  for _ = 1 to 500 do
    let i = Prng.Dist.weighted g [| 0.; 1.; 0.; 1.; 0. |] in
    if i <> 1 && i <> 3 then Alcotest.failf "picked zero-weight index %d" i
  done

(* Alias-table vs naive-sampler distribution equality, without
   sampling noise: the symbolic law of the table must equal the
   normalized weights (which is also the law of [weighted]'s inverse
   CDF) up to float rounding. *)
let qcheck_alias_law_equals_weights =
  QCheck.Test.make ~name:"alias table law = normalized weights" ~count:500
    QCheck.(list_of_size (Gen.int_range 1 20) (float_range 0. 10.))
    (fun ws ->
      let w = Array.of_list ws in
      let total = Array.fold_left ( +. ) 0. w in
      QCheck.assume (total > 0.);
      let induced = Prng.Dist.alias_induced (Prng.Dist.alias_of_weights w) in
      let ok = ref true in
      Array.iteri
        (fun i wi ->
          if Float.abs (induced.(i) -. (wi /. total)) > 1e-9 then ok := false)
        w;
      !ok)

let qcheck_int_in_range =
  QCheck.Test.make ~name:"Rng.int stays in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Prng.Rng.create ~seed () in
      let x = Prng.Rng.int g bound in
      0 <= x && x < bound)

let qcheck_inverse_cdf_valid =
  QCheck.Test.make ~name:"Dist.inverse_cdf lands on positive weight" ~count:500
    QCheck.(pair (list_of_size (Gen.int_range 1 10) (float_range 0. 10.))
              (float_range 0. 0.999))
    (fun (ws, u) ->
      let w = Array.of_list ws in
      QCheck.assume (Array.fold_left ( +. ) 0. w > 0.);
      let i = Prng.Dist.inverse_cdf w u in
      0 <= i && i < Array.length w)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("determinism", test_determinism);
      ("copy replays stream", test_copy_replays);
      ("split differs", test_split_differs);
      ("seed changes stream", test_seed_changes_stream);
      ("int bounds", test_int_bounds);
      ("int invalid", test_int_invalid);
      ("int_in", test_int_in);
      ("float range", test_float_range);
      ("float mean", test_float_mean);
      ("bool balance", test_bool_balance);
      ("bernoulli edges", test_bernoulli_edges);
      ("geometric", test_geometric);
      ("pair_distinct", test_pair_distinct);
      ("pair uniform", test_pair_uniform);
      ("shuffle multiset", test_shuffle_multiset);
      ("xoshiro jump", test_xoshiro_jump);
      ("weighted_int frequencies", test_weighted_int);
      ("inverse_cdf boundaries", test_inverse_cdf);
      ("alias frequencies", test_alias_matches_weights);
      ("weighted skips zeros", test_weighted_skips_zeros);
    ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        qcheck_int_in_range;
        qcheck_inverse_cdf_valid;
        qcheck_alias_law_equals_weights;
      ]
