(* Tests for the extension modules: delayed path coupling, empirical TV
   estimation, exact decay profiles, bounded open systems, and the
   Lemma 6.2 contraction of the edge coupling. *)

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector
module Sr = Core.Scheduling_rule
module C = Edgeorient.Class_chain

let rng ?(seed = 42) () = Prng.Rng.create ~seed ()

(* ---- Delayed path coupling ---- *)

let test_delayed_bound_values () =
  (* beta = 0: one block suffices. *)
  Alcotest.(check (float 1e-9)) "beta 0" 3.
    (Coupling.Delayed.bound ~block:3 ~beta:0. ~diameter:10 ~eps:0.25);
  (* Closed form: block 1, beta 1/2, diameter 16, eps 1/4 gives
     ceil(ln 64 / ln 2) = 6 blocks. *)
  Alcotest.(check (float 1e-9)) "block 1 closed form" 6.
    (Coupling.Delayed.bound ~block:1 ~beta:0.5 ~diameter:16 ~eps:0.25);
  (* And it never beats Lemma 3.1(1) by more than the ln(1/beta) vs
     (1 - beta) slack. *)
  let lemma =
    Coupling.Path_coupling.bound_contractive ~beta:0.5 ~diameter:16 ~eps:0.25
  in
  Alcotest.(check bool) "within the lemma's slack" true
    (6. <= lemma +. 1. && 6. >= (lemma /. 2.) -. 1.)

let test_delayed_bound_monotone () =
  let b k = Coupling.Delayed.bound ~block:k ~beta:0.5 ~diameter:10 ~eps:0.25 in
  Alcotest.(check bool) "linear in block" true (b 4 = 4. *. b 1);
  Alcotest.check_raises "bad block"
    (Invalid_argument "Delayed.bound: block must be >= 1") (fun () ->
      ignore (Coupling.Delayed.bound ~block:0 ~beta:0.5 ~diameter:10 ~eps:0.25))

let test_block_coupling_steps () =
  let step _g x y = (x + 1, y + 1) in
  let c =
    Coupling.Coupled_chain.make ~step ~equal:( = )
      ~distance:(fun a b -> abs (a - b))
  in
  let blocked = Coupling.Delayed.block_coupling ~block:5 c in
  let g = rng () in
  let x, y = blocked.Coupling.Coupled_chain.step g 0 10 in
  Alcotest.(check (pair int int)) "five steps" (5, 15) (x, y)

let test_block_beta_estimate () =
  (* A coupling halving the distance each step: block beta over k steps
     is 2^-k. *)
  let step _g x y = (x, x + ((y - x) / 2)) in
  let c =
    Coupling.Coupled_chain.make ~step ~equal:( = )
      ~distance:(fun a b -> abs (a - b))
  in
  let rngm = rng () in
  let beta =
    Coupling.Delayed.block_beta_estimate ~reps:50 ~block:3 ~rng:rngm c
      ~pair:(fun _ -> (0, 64))
  in
  Alcotest.(check (float 1e-9)) "2^-3" 0.125 beta

let test_delayed_on_scenario_a () =
  (* The real chain: over a block of m steps the monotone coupling
     contracts the extremal pair's distance markedly. *)
  let n = 32 in
  let process = Core.Dynamic_process.make Core.Scenario.A (Sr.abku 2) ~n in
  let c = Core.Coupled.monotone process in
  let rngm = rng ~seed:3 () in
  let beta =
    Coupling.Delayed.block_beta_estimate ~reps:30 ~block:n ~rng:rngm c
      ~pair:(fun _ ->
        ( Mv.of_load_vector (Lv.all_in_one ~n ~m:n),
          Mv.of_load_vector (Lv.uniform ~n ~m:n) ))
  in
  Alcotest.(check bool)
    (Printf.sprintf "block contraction %.3f < 0.9" beta)
    true (beta < 0.9)

(* ---- Empirical TV ---- *)

let test_tv_between_samples_basic () =
  Alcotest.(check (float 1e-9)) "identical" 0.
    (Markov.Empirical.tv_between_samples [| 1; 2; 1; 2 |] [| 2; 1; 2; 1 |]);
  Alcotest.(check (float 1e-9)) "disjoint" 1.
    (Markov.Empirical.tv_between_samples [| 0; 0 |] [| 3; 3 |]);
  Alcotest.(check (float 1e-9)) "half" 0.5
    (Markov.Empirical.tv_between_samples [| 0; 0 |] [| 0; 1 |])

let test_tv_between_samples_invalid () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Empirical.tv_between_samples: empty sample") (fun () ->
      ignore (Markov.Empirical.tv_between_samples [||] [| 1 |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Empirical.tv_between_samples: negative value") (fun () ->
      ignore (Markov.Empirical.tv_between_samples [| -1 |] [| 1 |]))

let test_observable_tv_decays () =
  let n = 16 in
  let process = Core.Dynamic_process.make Core.Scenario.A (Sr.abku 2) ~n in
  let chain =
    Markov.Chain.make (fun g v ->
        Core.Dynamic_process.step_in_place process g v;
        v)
  in
  let rngm = rng ~seed:9 () in
  let tv t =
    Markov.Empirical.observable_tv chain ~rng:rngm
      ~x0:(fun () -> Mv.of_load_vector (Lv.all_in_one ~n ~m:n))
      ~y0:(fun () -> Mv.of_load_vector (Lv.uniform ~n ~m:n))
      ~t ~reps:400 ~observable:Mv.max_load
  in
  let early = tv 1 and late = tv (8 * n) in
  Alcotest.(check bool)
    (Printf.sprintf "decays: %.3f -> %.3f" early late)
    true
    (early > 0.8 && late < 0.2)

let test_decay_profile_shape () =
  let chain = Markov.Chain.make (fun g s -> s + Prng.Rng.int g 2) in
  let rngm = rng () in
  let profile =
    Markov.Empirical.decay_profile chain ~rng:rngm
      ~x0:(fun () -> 0)
      ~y0:(fun () -> 0)
      ~times:[ 0; 1; 2 ] ~reps:50 ~observable:(fun s -> s)
  in
  Alcotest.(check int) "three points" 3 (List.length profile);
  List.iter
    (fun (_, tv) ->
      Alcotest.(check bool) "same law => small TV" true (tv < 0.3))
    profile

(* ---- Exact decay profile and relaxation ---- *)

let two_state p q =
  Markov.Exact.build ~states:[| "x"; "y" |] ~transitions:(function
    | "x" -> [ ("x", 1. -. p); ("y", p) ]
    | _ -> [ ("x", q); ("y", 1. -. q) ])

let test_worst_tv_profile_monotone () =
  let c = two_state 0.2 0.3 in
  let profile = Markov.Exact.worst_tv_profile c ~max_t:30 in
  Alcotest.(check int) "length" 31 (Array.length profile);
  for t = 1 to 30 do
    if profile.(t) > profile.(t - 1) +. 1e-12 then
      Alcotest.failf "TV increased at %d" t
  done;
  Alcotest.(check bool) "starts high" true (profile.(0) > 0.5);
  Alcotest.(check bool) "ends low" true (profile.(30) < 0.01)

let test_relaxation_two_state () =
  (* For the two-state chain the TV decays exactly as |1 - p - q|^t, so
     tau_rel = -1/ln|1-p-q|. *)
  let p = 0.2 and q = 0.3 in
  let c = two_state p q in
  let expected = -1. /. log (1. -. p -. q) in
  let got = Markov.Exact.relaxation_estimate c ~max_t:60 () in
  Alcotest.(check bool)
    (Printf.sprintf "tau_rel %.3f ~ %.3f" got expected)
    true
    (Float.abs (got -. expected) < 0.05)

let test_relaxation_consistent_with_mixing () =
  let process = Core.Dynamic_process.make Core.Scenario.A (Sr.abku 2) ~n:5 in
  let states = Markov.Partition_space.enumerate ~n:5 ~m:5 in
  let chain =
    Markov.Exact.build ~states
      ~transitions:(Core.Dynamic_process.exact_transitions process)
  in
  let tau = Markov.Exact.mixing_time ~eps:0.25 chain in
  let tau_rel = Markov.Exact.relaxation_estimate chain ~max_t:100 () in
  Alcotest.(check bool) "tau_rel below tau(1/4) scale" true
    (tau_rel > 0.1 && tau_rel < float_of_int (4 * tau))

let test_profile_crossing_equals_mixing_time () =
  (* tau(eps) must be the first index where the worst-TV profile drops to
     eps, for any chain and any eps. *)
  let process = Core.Dynamic_process.make Core.Scenario.B (Sr.abku 2) ~n:5 in
  let states = Markov.Partition_space.enumerate ~n:5 ~m:5 in
  let chain =
    Markov.Exact.build ~states
      ~transitions:(Core.Dynamic_process.exact_transitions process)
  in
  List.iter
    (fun eps ->
      let tau = Markov.Exact.mixing_time ~eps chain in
      let profile = Markov.Exact.worst_tv_profile chain ~max_t:(tau + 5) in
      Alcotest.(check bool)
        (Printf.sprintf "profile at tau(%g) below eps" eps)
        true
        (profile.(tau) <= eps);
      if tau > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "profile before tau(%g) above eps" eps)
          true
          (profile.(tau - 1) > eps))
    [ 0.5; 0.25; 0.05 ]

let test_stationary_expectation () =
  (* Two-state chain with pi = (1/4, 3/4): E[f] with f = (0, 4) is 3. *)
  let c = two_state 0.3 0.1 in
  let e =
    Markov.Exact.stationary_expectation c
      ~f:(fun s -> if s = "x" then 0. else 4.)
      ()
  in
  Alcotest.(check bool) "expectation" true (Float.abs (e -. 3.) < 1e-6);
  (* And with an explicit pi. *)
  let e' =
    Markov.Exact.stationary_expectation c ~pi:[| 0.5; 0.5 |]
      ~f:(fun _ -> 2.)
      ()
  in
  Alcotest.(check (float 1e-12)) "constant observable" 2. e'

let test_exact_stationary_max_load_close_to_fluid () =
  (* The exact stationary E[max load] at n = m = 7 sits within one level
     of the fluid prediction. *)
  let n = 7 in
  let process = Core.Dynamic_process.make Core.Scenario.A (Sr.abku 2) ~n in
  let states = Markov.Partition_space.enumerate ~n ~m:n in
  let chain =
    Markov.Exact.build ~states
      ~transitions:(Core.Dynamic_process.exact_transitions process)
  in
  let exact =
    Markov.Exact.stationary_expectation chain
      ~f:(fun v -> float_of_int (Lv.max_load v))
      ()
  in
  let fluid = Fluid.Mean_field.fixed_point_a ~d:2 ~m_over_n:1. ~levels:20 in
  let pred = float_of_int (Fluid.Mean_field.predicted_max_load ~n fluid) in
  Alcotest.(check bool)
    (Printf.sprintf "exact %.2f within 1 of fluid %.0f" exact pred)
    true
    (Float.abs (exact -. pred) <= 1.)

(* ---- bounded open systems ---- *)

let test_open_capacity_respected () =
  let g = rng () in
  let p = Core.Open_process.make ~insert_probability:0.9 ~capacity:10
      (Sr.abku 2) ~n:4
  in
  Alcotest.(check (option int)) "capacity stored" (Some 10)
    (Core.Open_process.capacity p);
  let bins = Core.Bins.create ~n:4 in
  for _ = 1 to 2000 do
    Core.Open_process.step p g bins;
    if Core.Bins.num_balls bins > 10 then Alcotest.fail "capacity exceeded"
  done;
  Alcotest.(check bool) "population reached cap region" true
    (Core.Bins.num_balls bins > 5)

let test_open_capacity_normalized () =
  let g = rng () in
  let p = Core.Open_process.make ~insert_probability:0.9 ~capacity:6
      (Sr.abku 2) ~n:3
  in
  let v = Mv.of_load_vector (Lv.of_array [| 0; 0; 0 |]) in
  for _ = 1 to 500 do
    Core.Open_process.step_normalized p g v;
    if Mv.total v > 6 then Alcotest.fail "capacity exceeded (normalized)"
  done

let test_open_capacity_invalid () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Open_process.make: capacity must be >= 1") (fun () ->
      ignore (Core.Open_process.make ~capacity:0 (Sr.abku 1) ~n:2))

let test_open_bounded_coalesces_faster () =
  (* A bounded population removes the null-recurrent tail: coalescence
     must succeed fast. *)
  let n = 8 in
  let p = Core.Open_process.make ~capacity:(2 * n) (Sr.abku 2) ~n in
  let c = Core.Open_process.coupled p in
  let g = rng ~seed:5 () in
  let x = Mv.of_load_vector (Lv.all_in_one ~n ~m:(2 * n)) in
  let y = Mv.of_load_vector (Lv.of_array (Array.make n 0)) in
  match Coupling.Coalescence.time c g x y ~limit:1_000_000 with
  | Some _ -> ()
  | None -> Alcotest.fail "bounded open system did not coalesce"

(* ---- Lemma 6.2 on the edge coupling ---- *)

let random_g_tilde_pair g ~n =
  (* y has two vertices at a common discrepancy w; x moves them to w+1
     and w-1: then x = y + e_l - 2e_{l+1} + e_{l+2} and Delta(x,y) = 1. *)
  let rec attempt () =
    let diffs = Array.make n 0 in
    (* Perturb some vertices in +-1 pairs to randomize the environment. *)
    for _ = 1 to n / 4 do
      let i, j = Prng.Rng.pair_distinct g n in
      if diffs.(i) < n - 2 && diffs.(j) > -(n - 2) then begin
        diffs.(i) <- diffs.(i) + 1;
        diffs.(j) <- diffs.(j) - 1
      end
    done;
    let i, j = Prng.Rng.pair_distinct g n in
    if diffs.(i) = diffs.(j) && abs diffs.(i) < n - 2 then begin
      let y = C.of_discrepancies diffs in
      let diffs_x = Array.copy diffs in
      diffs_x.(i) <- diffs_x.(i) + 1;
      diffs_x.(j) <- diffs_x.(j) - 1;
      let x = C.of_discrepancies diffs_x in
      match C.g_tilde_lambda x y with Some _ -> (x, y) | None -> attempt ()
    end
    else attempt ()
  in
  attempt ()

let test_lemma_6_2_contraction () =
  (* E[emd after] <= emd before for G-tilde-adjacent pairs, strictly in
     the mean (Lemma 6.2 gives 1 - (n choose 2)^-1 in the paper's metric;
     in the EMD surrogate we check non-expansion plus strict decrease in
     aggregate). *)
  let n = 8 in
  let coupled = C.coupled () in
  let g = rng ~seed:31 () in
  let before = ref 0 and after = ref 0 and reps = 20_000 in
  for _ = 1 to reps do
    let x, y = random_g_tilde_pair g ~n in
    let x', y' = coupled.Coupling.Coupled_chain.step g x y in
    before := !before + C.emd x y;
    after := !after + C.emd x' y'
  done;
  Alcotest.(check bool)
    (Printf.sprintf "mean emd %.4f -> %.4f"
       (float_of_int !before /. float_of_int reps)
       (float_of_int !after /. float_of_int reps))
    true
    (!after < !before)

let test_lemma_6_2_case7_coalesces () =
  (* The special case: phi and psi hit exactly the lambda / lambda+2
     classes while the other copy sees both in lambda+1.  Thanks to the
     bit flip the pair coalesces whichever b is drawn.  We detect the
     situation by outcome: once equal, stays equal; and distance never
     exceeds the G-tilde diameter 2 under the coupling from such pairs. *)
  let n = 6 in
  let coupled = C.coupled () in
  let g = rng ~seed:33 () in
  for _ = 1 to 2000 do
    let x, y = random_g_tilde_pair g ~n in
    let x', y' = coupled.Coupling.Coupled_chain.step g x y in
    let d = C.emd x' y' in
    if d > 4 then Alcotest.failf "distance blew up to %d" d
  done

(* A J-tilde_k adjacent pair (Definition 6.2): y holds a vertex at +h and
   one at -h (classes k-1 = 2h apart); x pushes them outward to +-(h+1),
   and every other vertex sits outside [-h, h] so the gap is empty in x.
   We fill the rest with pairs at +-(h+1). *)
let j_tilde_pair ~h ~pairs =
  let build special =
    let diffs =
      Array.concat
        [
          special;
          Array.init pairs (fun _ -> h + 1);
          Array.init pairs (fun _ -> -(h + 1));
        ]
    in
    C.of_discrepancies diffs
  in
  (build [| h + 1; -(h + 1) |], build [| h; -h |])

let test_lemma_6_3_non_expansion () =
  (* Lemma 6.3's strict contraction is stated in the paper's path metric;
     in the EMD surrogate the J-tilde_k coupling is exactly
     distance-preserving in expectation (gains and losses balance), so we
     check non-expansion here and, separately, that such pairs still
     coalesce — the two facts that matter for the mixing bound. *)
  let coupled = C.coupled () in
  List.iter
    (fun h ->
      let x, y = j_tilde_pair ~h ~pairs:2 in
      Alcotest.(check int) "pair at EMD 2" 2 (C.emd x y);
      let g = rng ~seed:(40 + h) () in
      let before = ref 0 and after = ref 0 and reps = 20_000 in
      for _ = 1 to reps do
        let x', y' = coupled.Coupling.Coupled_chain.step g x y in
        before := !before + C.emd x y;
        after := !after + C.emd x' y'
      done;
      Alcotest.(check bool)
        (Printf.sprintf "h=%d: mean EMD %.4f -> %.4f (non-expanding)" h
           (float_of_int !before /. float_of_int reps)
           (float_of_int !after /. float_of_int reps))
        true
        (!after <= !before);
      match
        Coupling.Coalescence.time coupled (rng ~seed:(50 + h) ()) x y
          ~limit:1_000_000
      with
      | Some _ -> ()
      | None -> Alcotest.failf "h=%d: J-tilde pair did not coalesce" h)
    [ 1; 2 ]

let qcheck_g_tilde_roundtrip =
  QCheck.Test.make ~name:"G-tilde pairs detected by g_tilde_lambda" ~count:200
    QCheck.(pair small_int (int_range 6 12))
    (fun (seed, n) ->
      let g = rng ~seed () in
      let x, y = random_g_tilde_pair g ~n in
      match C.g_tilde_lambda x y with
      | Some lambda ->
          let cx = C.counts x and cy = C.counts y in
          cx.(lambda) - cy.(lambda) = 1
          && cx.(lambda + 1) - cy.(lambda + 1) = -2
          && cx.(lambda + 2) - cy.(lambda + 2) = 1
      | None -> false)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("delayed bound values", test_delayed_bound_values);
      ("delayed bound monotone", test_delayed_bound_monotone);
      ("block coupling steps", test_block_coupling_steps);
      ("block beta estimate", test_block_beta_estimate);
      ("delayed coupling on scenario A", test_delayed_on_scenario_a);
      ("tv_between_samples", test_tv_between_samples_basic);
      ("tv_between_samples invalid", test_tv_between_samples_invalid);
      ("observable TV decays", test_observable_tv_decays);
      ("decay profile shape", test_decay_profile_shape);
      ("worst TV profile monotone", test_worst_tv_profile_monotone);
      ("relaxation: two-state closed form", test_relaxation_two_state);
      ("relaxation consistent with mixing", test_relaxation_consistent_with_mixing);
      ("profile crossing = mixing time", test_profile_crossing_equals_mixing_time);
      ("stationary expectation", test_stationary_expectation);
      ("exact E[max load] vs fluid", test_exact_stationary_max_load_close_to_fluid);
      ("open capacity respected", test_open_capacity_respected);
      ("open capacity normalized", test_open_capacity_normalized);
      ("open capacity invalid", test_open_capacity_invalid);
      ("bounded open coalesces", test_open_bounded_coalesces_faster);
      ("Lemma 6.2 contraction (EMD)", test_lemma_6_2_contraction);
      ("Lemma 6.2 case 7 sanity", test_lemma_6_2_case7_coalesces);
      ("Lemma 6.3 pairs: non-expansion + coalescence", test_lemma_6_3_non_expansion);
    ]
  @ List.map QCheck_alcotest.to_alcotest [ qcheck_g_tilde_roundtrip ]
