(* Tests for the closed-form bound calculators. *)

module B = Theory.Bounds

let feq ?(tol = 1e-9) a b = Float.abs (a -. b) <= tol

let test_theorem1_value () =
  let v = B.theorem1 ~m:100 ~eps:0.25 in
  Alcotest.(check bool) "ceil(m ln(m/eps))" true
    (feq v (ceil (100. *. log 400.)))

let test_theorem1_monotone () =
  Alcotest.(check bool) "in m" true (B.theorem1 ~m:200 ~eps:0.25 > B.theorem1 ~m:100 ~eps:0.25);
  Alcotest.(check bool) "in eps" true (B.theorem1 ~m:100 ~eps:0.01 > B.theorem1 ~m:100 ~eps:0.25)

let test_theorem1_invalid () =
  Alcotest.check_raises "m" (Invalid_argument "Bounds.theorem1: m < 1") (fun () ->
      ignore (B.theorem1 ~m:0 ~eps:0.5));
  Alcotest.check_raises "eps" (Invalid_argument "Bounds.theorem1: eps not in (0,1)")
    (fun () -> ignore (B.theorem1 ~m:2 ~eps:2.))

let test_claim53_scaling () =
  (* O(n m^2): doubling m roughly quadruples, doubling n roughly doubles. *)
  let b = B.claim53 ~n:10 ~m:10 ~eps:0.25 in
  let bm = B.claim53 ~n:10 ~m:20 ~eps:0.25 in
  let bn = B.claim53 ~n:20 ~m:10 ~eps:0.25 in
  Alcotest.(check bool) "quadratic in m" true (bm /. b > 3.5 && bm /. b < 4.5);
  Alcotest.(check bool) "linear in n" true (bn /. b > 1.8 && bn /. b < 2.2)

let test_scenario_b_forms () =
  Alcotest.(check bool) "improved" true
    (feq (B.scenario_b_improved ~m:10) (100. *. log 10.));
  Alcotest.(check bool) "lower" true (feq (B.scenario_b_lower ~m:10) 100.)

let test_corollary64 () =
  let v = B.corollary64 ~n:10 ~eps:0.25 in
  Alcotest.(check bool) "value" true (feq v (100. *. 9. /. 4. *. log 40.));
  Alcotest.(check bool) "cubic-ish" true
    (B.corollary64 ~n:20 ~eps:0.25 /. v > 7.)

let test_theorem2 () =
  let v = B.theorem2 ~n:10 in
  Alcotest.(check bool) "n^2 ln^2 n" true (feq v (100. *. log 10. *. log 10.));
  Alcotest.(check bool) "below corollary 6.4 for large n" true
    (B.theorem2 ~n:1000 < B.corollary64 ~n:1000 ~eps:0.25)

let test_edge_lower () =
  Alcotest.(check bool) "n^2" true (feq (B.edge_lower ~n:9) 81.);
  Alcotest.(check bool) "lower below upper" true
    (B.edge_lower ~n:100 < B.theorem2 ~n:100)

let test_azar_static () =
  (* The d = 1 vs d >= 2 contrast is asymptotic; use a large n. *)
  let n = 1_000_000 in
  let one = B.azar_static_max_load ~n ~m:n ~d:1 in
  let two = B.azar_static_max_load ~n ~m:n ~d:2 in
  let three = B.azar_static_max_load ~n ~m:n ~d:3 in
  Alcotest.(check bool) "d=2 beats d=1" true (two < one);
  Alcotest.(check bool) "d=3 beats d=2" true (three < two);
  Alcotest.(check bool) "d=2 value sane" true (two > 1. && two < 6.)

let test_edge_stationary_unfairness () =
  let v = B.edge_stationary_unfairness ~n:256 in
  Alcotest.(check bool) "log log 256 = 3" true (feq v 3.);
  Alcotest.check_raises "small n"
    (Invalid_argument "Bounds.edge_stationary_unfairness: n < 4") (fun () ->
      ignore (B.edge_stationary_unfairness ~n:3))

let test_recovery_steps () =
  Alcotest.(check bool) "A" true (feq (B.recovery_a_steps ~n:10) (10. *. log 10.));
  Alcotest.(check bool) "B" true (feq (B.recovery_b_steps ~n:10) (100. *. log 10.));
  Alcotest.(check bool) "B slower than A" true
    (B.recovery_b_steps ~n:100 > B.recovery_a_steps ~n:100)

let test_path_coupling_match () =
  (* The theory-side calculators agree with the coupling library's. *)
  Alcotest.(check bool) "case 1" true
    (feq
       (B.path_coupling_case1 ~beta:0.7 ~diameter:12 ~eps:0.1)
       (Coupling.Path_coupling.bound_contractive ~beta:0.7 ~diameter:12 ~eps:0.1));
  Alcotest.(check bool) "case 2" true
    (feq
       (B.path_coupling_case2 ~alpha:0.3 ~diameter:12 ~eps:0.1)
       (Coupling.Path_coupling.bound_non_contractive ~alpha:0.3 ~diameter:12
          ~eps:0.1))

let test_theorem1_consistent_with_lemma () =
  (* Theorem 1 is Lemma 3.1(1) at beta = 1 - 1/m, diameter m (up to the
     ceiling). *)
  let m = 50 in
  let lemma =
    B.path_coupling_case1
      ~beta:(1. -. (1. /. float_of_int m))
      ~diameter:m ~eps:0.25
  in
  let thm = B.theorem1 ~m ~eps:0.25 in
  Alcotest.(check bool) "within one" true (Float.abs (thm -. lemma) <= 1.)

let test_rbb_bounds () =
  (* rbb_mixing at m = n reads n ln n; the m/n prefactor is linear. *)
  Alcotest.(check (float 1e-9))
    "rbb_mixing n=m=64" (64. *. log 64.)
    (B.rbb_mixing ~n:64 ~m:64);
  Alcotest.(check (float 1e-9))
    "rbb_mixing doubles with m" (2. *. B.rbb_mixing ~n:64 ~m:64)
    (B.rbb_mixing ~n:64 ~m:128);
  Alcotest.(check (float 1e-9)) "rbb_stabilization" 64. (B.rbb_stabilization ~n:64);
  Alcotest.(check (float 1e-9)) "rbb_max_load" (log 64.) (B.rbb_max_load ~n:64);
  List.iter
    (fun (msg, f) ->
      Alcotest.check_raises "n < 2 rejected" (Invalid_argument msg) f)
    [
      ("Bounds.rbb_mixing", fun () -> ignore (B.rbb_mixing ~n:1 ~m:4));
      ( "Bounds.rbb_stabilization: n < 2",
        fun () -> ignore (B.rbb_stabilization ~n:1) );
      ("Bounds.rbb_max_load: n < 2", fun () -> ignore (B.rbb_max_load ~n:1));
    ]

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("theorem 1 value", test_theorem1_value);
      ("theorem 1 monotone", test_theorem1_monotone);
      ("theorem 1 invalid", test_theorem1_invalid);
      ("claim 5.3 scaling", test_claim53_scaling);
      ("scenario B forms", test_scenario_b_forms);
      ("corollary 6.4", test_corollary64);
      ("theorem 2", test_theorem2);
      ("edge lower bound", test_edge_lower);
      ("Azar static formulas", test_azar_static);
      ("edge stationary unfairness", test_edge_stationary_unfairness);
      ("recovery step formulas", test_recovery_steps);
      ("path coupling calculators agree", test_path_coupling_match);
      ("theorem 1 = lemma 3.1(1)", test_theorem1_consistent_with_lemma);
      ("rbb bounds", test_rbb_bounds);
    ]
