(* The simulation engine: Sim drivers, Metrics accounting, and the
   Runner's determinism guarantee (domain count must not change any
   observation or counter). *)

module Lv = Loadvec.Load_vector
module Mv = Loadvec.Mutable_vector
module Sr = Core.Scheduling_rule

let rng ?(seed = 0xE46) () = Prng.Rng.create ~seed ()

(* A deterministic counter sim: the state is an int, the probe is its
   value.  Exercises the drivers without any randomness. *)
let counter_sim () =
  let x = ref 0 in
  Engine.Sim.make
    ~step:(fun _ -> incr x)
    ~observe:(fun () -> !x)
    ~reset:(fun v -> x := v)
    ~probe:(fun () -> !x)
    ()

let test_sim_drivers () =
  let s = counter_sim () in
  let g = rng () in
  Alcotest.(check (option int))
    "first_hit checks t=0" (Some 0)
    (Engine.Sim.first_hit s g ~pred:(fun v -> v = 0) ~limit:5);
  Alcotest.(check (option int))
    "first_hit steps to the target" (Some 7)
    (Engine.Sim.first_hit s g ~pred:(fun v -> v >= 7) ~limit:10);
  Alcotest.(check (option int))
    "first_hit None past the limit" None
    (Engine.Sim.first_hit s g ~pred:(fun v -> v > 1000) ~limit:3);
  (* x = 10 after the misses above. *)
  Alcotest.(check (array int))
    "trajectory observes after each step" [| 11; 12; 13 |]
    (Engine.Sim.trajectory s g 3);
  Alcotest.(check (list (pair int int)))
    "fold sees step index and probe"
    [ (1, 14); (2, 15) ]
    (List.rev
       (Engine.Sim.fold s g 2 ~init:[] ~f:(fun acc i p -> (i, p) :: acc)));
  Engine.Sim.reset s 5;
  Alcotest.(check int) "reset roundtrip" 5 (Engine.Sim.observe s);
  Alcotest.(check (list int))
    "sample_every: burn-in then every-th state" [ 10; 13; 16 ]
    (Engine.Sim.sample_every s g ~burn_in:2 ~every:3 ~samples:3 (fun () ->
         Engine.Sim.observe s));
  let snap = Engine.Metrics.snapshot (Engine.Sim.metrics s) in
  Alcotest.(check int) "metrics count every driver step" 26 snap.steps;
  Alcotest.(check int) "watermark tracks the probe" 16 snap.watermark;
  Alcotest.check_raises "negative iterate"
    (Invalid_argument "Sim.iterate: negative step count") (fun () ->
      Engine.Sim.iterate s g (-1))

let test_metrics_accounting () =
  let m = Engine.Metrics.create () in
  Engine.Metrics.add_step m;
  Engine.Metrics.add_probes m 3;
  Engine.Metrics.add_draws m 4;
  Engine.Metrics.watermark m 7;
  Engine.Metrics.watermark m 2;
  Engine.Metrics.add_phase m "run" 0.25;
  let s = Engine.Metrics.snapshot m in
  Alcotest.(check int) "steps" 1 s.steps;
  Alcotest.(check int) "probes" 3 s.probes;
  Alcotest.(check int) "draws" 4 s.rng_draws;
  Alcotest.(check int) "watermark keeps the max" 7 s.watermark;
  let merged = Engine.Metrics.merge s s in
  Alcotest.(check int) "merge sums steps" 2 merged.steps;
  Alcotest.(check int) "merge sums probes" 6 merged.probes;
  Alcotest.(check int) "merge maxes watermark" 7 merged.watermark;
  Alcotest.(check (list (pair string (float 1e-9))))
    "merge sums phases"
    [ ("run", 0.5) ]
    merged.phases;
  let d = Engine.Metrics.diff s merged in
  Alcotest.(check int) "diff recovers the delta" 1 d.steps;
  Alcotest.(check (list (pair string (float 1e-9))))
    "diff recovers the phase delta"
    [ ("run", 0.25) ]
    d.phases;
  Alcotest.(check int) "merge with zero is identity" s.steps
    (Engine.Metrics.merge Engine.Metrics.zero s).steps;
  (* to_table renders without raising and carries the derived rows. *)
  let table = Engine.Metrics.to_table ~title:"t" merged in
  Alcotest.(check bool)
    "to_table derives probes/step" true
    (let csv = Stats.Table.to_csv table in
     String.length csv > 0);
  Alcotest.check_raises "negative probes"
    (Invalid_argument "Metrics.add_probes: negative count") (fun () ->
      Engine.Metrics.add_probes m (-1))

(* The adapter's probe counter must equal the sum the raw stepper
   reports when fed the identical stream. *)
let test_adapter_probe_counter () =
  let n = 8 in
  let process =
    Core.Dynamic_process.make Core.Scenario.A
      (Sr.adap (Core.Adaptive.of_list [ 1; 2; 2; 3 ]))
      ~n
  in
  let steps = 500 in
  let v = Mv.of_load_vector (Lv.uniform ~n ~m:n) in
  let s = Core.Dynamic_process.sim process v in
  Engine.Sim.iterate s (rng ()) steps;
  let snap = Engine.Metrics.snapshot (Engine.Sim.metrics s) in
  let v' = Mv.of_load_vector (Lv.uniform ~n ~m:n) in
  let g = rng () in
  let manual = ref 0 in
  for _ = 1 to steps do
    manual := !manual + Core.Dynamic_process.step_probes process g v'
  done;
  Alcotest.(check int) "steps counted" steps snap.steps;
  Alcotest.(check int) "probes = sum of step_probes" !manual snap.probes;
  Alcotest.(check int) "draws = steps + probes" (steps + !manual)
    snap.rng_draws

(* Markov.Chain is only the one-step view; drive it locally. *)
let chain_iterate c g s t =
  let state = ref s in
  for _ = 1 to t do
    state := c.Markov.Chain.step g !state
  done;
  !state

(* Same seed, same stream: the in-place sim must land on the exact state
   the immutable Markov.Chain stepper produces. *)
let test_sim_matches_chain_bitwise () =
  let n = 6 in
  List.iter
    (fun scenario ->
      let process = Core.Dynamic_process.make scenario (Sr.abku 2) ~n in
      let start = Lv.all_in_one ~n ~m:6 in
      let chain_final =
        chain_iterate (Core.Dynamic_process.chain process) (rng ()) start 300
      in
      let v = Mv.of_load_vector start in
      let s = Core.Dynamic_process.sim process v in
      Engine.Sim.iterate s (rng ()) 300;
      Alcotest.(check (array int))
        (Printf.sprintf "scenario %s bit-identical"
           (Core.Scenario.name scenario))
        (Lv.to_array chain_final)
        (Lv.to_array (Engine.Sim.observe s)))
    [ Core.Scenario.A; Core.Scenario.B ]

(* Engine and chain runs on disjoint seed streams must still agree in
   law: the empirical TV distance of the max-load observable after t
   steps is sampling noise only. *)
let test_sim_matches_chain_in_law () =
  let n = 4 and m = 4 in
  let process = Core.Dynamic_process.make Core.Scenario.A (Sr.abku 2) ~n in
  let t = 60 and reps = 600 in
  let sim_samples =
    Array.init reps (fun i ->
        let g = Prng.Rng.create ~seed:(1_000 + i) () in
        let v = Mv.of_load_vector (Lv.all_in_one ~n ~m) in
        let s = Core.Dynamic_process.sim process v in
        Engine.Sim.iterate s g t;
        Engine.Sim.probe s)
  in
  let chain = Core.Dynamic_process.chain process in
  let chain_samples =
    Array.init reps (fun i ->
        let g = Prng.Rng.create ~seed:(90_000 + i) () in
        Lv.max_load (chain_iterate chain g (Lv.all_in_one ~n ~m) t))
  in
  let tv = Markov.Empirical.tv_between_samples sim_samples chain_samples in
  Alcotest.(check bool)
    (Printf.sprintf "empirical TV %.3f below noise threshold" tv)
    true (tv < 0.08)

(* The runner's core guarantee: the domain count changes nothing but
   wall-clock — observations and every integer counter are identical. *)
let test_runner_domain_determinism () =
  let reps = 12 and steps = 200 and n = 16 in
  let run domains =
    Engine.Runner.run ~domains ~rng:(rng ()) ~reps (fun g metrics ->
        let process =
          Core.Dynamic_process.make Core.Scenario.A (Sr.abku 2) ~n
        in
        let v = Mv.of_load_vector (Lv.all_in_one ~n ~m:n) in
        let s = Core.Dynamic_process.sim ~metrics process v in
        Engine.Sim.iterate s g steps;
        Lv.to_array (Engine.Sim.observe s))
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check (array (array int)))
    "identical observations" seq.observations par.observations;
  let ss = seq.Engine.Runner.metrics and ps = par.Engine.Runner.metrics in
  Alcotest.(check int) "identical step counters" ss.steps ps.steps;
  Alcotest.(check int) "identical probe counters" ss.probes ps.probes;
  Alcotest.(check int) "identical draw counters" ss.rng_draws ps.rng_draws;
  Alcotest.(check int) "identical watermarks" ss.watermark ps.watermark;
  (* Aggregate = sum over reps: every rep contributes its full loop. *)
  Alcotest.(check int) "aggregate steps = reps * steps" (reps * steps)
    ss.steps;
  Alcotest.(check int) "aggregate probes = 2 per step" (2 * reps * steps)
    ss.probes

let test_runner_summarize () =
  let m = Engine.Runner.summarize [| Some 3; None; Some 1 |] in
  Alcotest.(check (array int)) "times in rep order" [| 3; 1 |] m.times;
  Alcotest.(check int) "failures" 1 m.failures;
  Alcotest.(check (float 1e-9)) "median" 2.0 m.median;
  Alcotest.(check (float 1e-9)) "mean" 2.0 m.mean;
  let all_failed = Engine.Runner.summarize [| None; None |] in
  Alcotest.(check int) "all failed" 2 all_failed.failures;
  Alcotest.(check bool) "median nan" true (Float.is_nan all_failed.median);
  Alcotest.check_raises "reps must be positive"
    (Invalid_argument "Runner.run: reps must be positive") (fun () ->
      ignore (Engine.Runner.run ~rng:(rng ()) ~reps:0 (fun _ _ -> ())))

(* Coupled_chain.sim must report coalescence exactly like the
   historical Coalescence.time loop. *)
let test_coupled_sim_first_hit () =
  let c =
    Coupling.Coupled_chain.make
      ~step:(fun _ x y -> (x + 1, y + 2))
      ~equal:( = )
      ~distance:(fun x y -> abs (x - y))
  in
  let check_pair x0 y0 =
    let expected = Coupling.Coalescence.time c (rng ()) x0 y0 ~limit:50 in
    let s = Coupling.Coupled_chain.sim c ~x:x0 ~y:y0 in
    let got =
      Engine.Sim.first_hit s (rng ()) ~pred:(fun d -> d = 0) ~limit:50
    in
    Alcotest.(check (option int))
      (Printf.sprintf "pair (%d, %d)" x0 y0)
      expected got
  in
  check_pair 0 0;
  check_pair 4 0;
  check_pair 0 1

(* Regression: [diff]'s phase combination historically computed
   before - after — a negated delta for shared keys, and the raw
   positive before-value for keys only present in [before] (which are
   fully elapsed and must contribute zero). *)
let test_metrics_diff_phases () =
  let mk phases =
    let m = Engine.Metrics.create () in
    List.iter (fun (k, v) -> Engine.Metrics.add_phase m k v) phases;
    Engine.Metrics.snapshot m
  in
  let before = mk [ ("setup", 1.0); ("shared", 0.25) ] in
  let after = mk [ ("shared", 0.75); ("teardown", 0.5) ] in
  let d = Engine.Metrics.diff before after in
  Alcotest.(check (list (pair string (float 1e-9))))
    "shared subtracts; before-only clamps to zero; after-only passes through"
    [ ("setup", 0.); ("shared", 0.5); ("teardown", 0.5) ]
    d.phases

let suite =
  List.map
    (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("sim drivers", test_sim_drivers);
      ("metrics accounting", test_metrics_accounting);
      ("metrics diff phases", test_metrics_diff_phases);
      ("adapter probe counter", test_adapter_probe_counter);
      ("sim = chain, bitwise", test_sim_matches_chain_bitwise);
      ("sim = chain, in law", test_sim_matches_chain_in_law);
      ("runner domain determinism", test_runner_domain_determinism);
      ("runner summarize", test_runner_summarize);
      ("coupled sim coalescence", test_coupled_sim_first_hit);
    ]
